"""F2 — Fig. 2: every box of the DMMS architecture, with latency profile.

Fig. 2 wires: sellers (Package / Anonymize / Accountability) -> arbiter
(Mashup Builder -> WTP Evaluator -> Pricing Engine -> Transaction Support
-> Revenue Allocation Engine) -> buyers (Define WTP / Package WTP / Obtain
Data).  This harness touches each box in one flow and reports a per-stage
latency profile — the component-level numbers a systems paper would show.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.datagen import make_classification_world
from repro.integration import MashupRequest
from repro.market import (
    Arbiter,
    BuyerPlatform,
    SellerPlatform,
    external_market,
)
from repro.mechanisms import Bid


@pytest.fixture(scope="module")
def profile():
    timings: dict[str, float] = {}
    world = make_classification_world(
        n_entities=300,
        feature_weights=(2.0, 1.5, 0.0, 2.5),
        dataset_features=((0, 1), (2, 3)),
        seed=13,
    )

    def clock(stage):
        class _Clock:
            def __enter__(self):
                self.t0 = time.perf_counter()

            def __exit__(self, *exc):
                timings[stage] = (time.perf_counter() - self.t0) * 1000

        return _Clock()

    # SMP: package + anonymize
    rng = np.random.default_rng(0)
    seller = SellerPlatform("alice", privacy_budget=10.0)
    with clock("SMP: package"):
        seller.package(world.datasets[0])
    with clock("SMP: anonymize (dp perturb)"):
        seller.dp_offer("seller_0", "f0", epsilon=5.0, rng=rng)
    arbiter = Arbiter(external_market())
    with clock("SMP: share -> metadata engine"):
        seller.share_all(arbiter)
    seller_b = SellerPlatform("bob")
    seller_b.package(world.datasets[1])
    seller_b.share_all(arbiter)

    # BMP: define + package WTP
    buyers = []
    with clock("BMP: define WTP"):
        for i, price in enumerate((100.0, 80.0, 60.0)):
            buyer = BuyerPlatform(f"b{i}")
            arbiter.register_participant(f"b{i}", funding=400.0)
            arbiter.attach_buyer_platform(buyer)
            wtp = buyer.classification_wtp(
                labels=world.label_relation,
                features=["f0", "f1", "f3"],
                price_steps=[(0.7, price)],
            )
            buyers.append((buyer, wtp))

    # AMP boxes, measured individually
    request = MashupRequest(attributes=["f0", "f1", "f3"], key="entity_id")
    with clock("AMP: mashup builder"):
        mashups = arbiter.builder.build(request)
    with clock("AMP: WTP evaluator"):
        evaluated = [
            (wtp, m, wtp.try_evaluate(m.relation))
            for _buyer, wtp in buyers
            for m in mashups[:1]
        ]
    with clock("AMP: pricing engine"):
        bids = [
            Bid(wtp.buyer, price)
            for wtp, _m, (sat, price) in
            [(w, m, e) for w, m, e in evaluated if e is not None]
        ]
        outcome = arbiter.design.mechanism.run(bids)
    with clock("AMP: full round (txn support + revenue allocation)"):
        for _buyer, wtp in buyers:
            arbiter.submit_wtp(wtp)
        result = arbiter.run_round()

    # accountability + recommendations after the fact
    with clock("SMP: accountability query"):
        sales = seller.my_sales(arbiter)
    with clock("arbiter service: recommendations"):
        recs = arbiter.recommendations.recommend(result.deliveries[0].buyer)

    return timings, arbiter, result, outcome, sales, recs


def test_f2_report(profile, table, benchmark):
    timings, arbiter, result, _outcome, _sales, _recs = profile
    table(
        ["Fig. 2 box", "latency (ms)"],
        [(stage, round(ms, 2)) for stage, ms in timings.items()],
        title="F2: DMMS component latency profile",
    )
    table(
        ["transactions", "revenue", "ledger conserves", "audit verifies"],
        [(result.transactions, round(result.revenue, 2),
          arbiter.ledger.conservation_check(), arbiter.audit.verify())],
        title="F2: flow outcome",
    )
    request = MashupRequest(attributes=["f0", "f1", "f3"], key="entity_id")
    benchmark(arbiter.builder.build, request)


def test_f2_every_box_exercised(profile):
    timings, *_ = profile
    expected = {
        "SMP: package", "SMP: anonymize (dp perturb)",
        "SMP: share -> metadata engine", "BMP: define WTP",
        "AMP: mashup builder", "AMP: WTP evaluator", "AMP: pricing engine",
        "AMP: full round (txn support + revenue allocation)",
        "SMP: accountability query", "arbiter service: recommendations",
    }
    assert expected <= set(timings)


def test_f2_flow_produces_transaction_and_lineage(profile):
    _timings, arbiter, result, outcome, sales, _recs = profile
    assert result.transactions >= 1
    assert outcome.winners  # pricing engine chose winners
    assert any(v > 0 for v in sales.values())  # seller sees revenue
    assert arbiter.lineage.datasets()
