"""E15 (extension) — Streaming markets with dynamic buyer arrival (§8.2).

The paper builds on designs where "buyers and sellers arriv[e] in a
streaming fashion" (Moor, NetEcon'19).  We sweep arrival rate and buyer
patience and compare a one-unit Vickrey (scarce good) against a posted
price (replicable good).  Expected shape: posted prices serve a constant
fraction instantly at any load; the single-unit auction saturates at one
sale per round, so its service rate collapses as load grows while its
per-unit price rises with the backlog.
"""

from __future__ import annotations

import pytest

from repro.mechanisms import PostedPriceMechanism, VickreyAuction
from repro.simulator import simulate_streaming_market, uniform_values

RATES = (1.0, 2.0, 4.0, 8.0)


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for rate in RATES:
        for name, mech in (
            ("vickrey-1", VickreyAuction(k=1)),
            ("posted-50", PostedPriceMechanism(price=50.0)),
        ):
            m = simulate_streaming_market(
                mech, uniform_values(0, 100),
                arrival_rate=rate, patience=3, n_rounds=150, seed=5,
            )
            rows.append(
                (
                    name,
                    rate,
                    m.arrivals,
                    round(m.service_rate, 3),
                    round(m.mean_wait, 2),
                    round(m.revenue / max(m.served, 1), 1),
                )
            )
    return rows


def test_e15_report(sweep, table, benchmark):
    table(
        ["mechanism", "arrival rate", "arrivals", "service rate",
         "mean wait", "revenue / sale"],
        sweep,
        title="E15: streaming market (patience 3, 150 rounds)",
    )
    benchmark(
        simulate_streaming_market,
        PostedPriceMechanism(price=50.0),
        uniform_values(0, 100),
        4.0, 3, 50, 0,
    )


def test_e15_posted_service_rate_load_invariant(sweep):
    rates = {
        rate: sr for name, rate, _a, sr, _w, _r in sweep
        if name == "posted-50"
    }
    values = list(rates.values())
    assert max(values) - min(values) < 0.12  # ~constant across load


def test_e15_auction_saturates_under_load(sweep):
    auction = {
        rate: sr for name, rate, _a, sr, _w, _r in sweep
        if name == "vickrey-1"
    }
    assert auction[8.0] < auction[1.0]  # service collapses with load
    assert auction[8.0] < 0.35


def test_e15_auction_price_rises_with_backlog(sweep):
    price = {
        rate: r for name, rate, _a, _sr, _w, r in sweep
        if name == "vickrey-1"
    }
    assert price[8.0] > price[1.0]
