"""E6 — Arbitrage-freeness of query pricing (§8.2).

"The problem is how to price relational queries... in such a way that
arbitrage opportunities (obtaining the same data through a different and
cheaper combination of queries) are not possible."

We generate random priced-bundle catalogs and exhaustively search every
atom subset for split arbitrage (a query priced above the sum of a
partition).  Expected shape: the naive sticker-price seller exhibits
arbitrage in most random catalogs; the min-cover closure pricer never does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing import (
    ArbitrageFreePricer,
    NaivePricer,
    PricedBundle,
    bundle,
    exhaustive_arbitrage_search,
)

ATOMS = ["a", "b", "c", "d", "e"]


def random_catalog(seed: int) -> list[PricedBundle]:
    rng = np.random.default_rng(seed)
    bundles = [
        bundle(atom, [atom], float(rng.uniform(5, 20))) for atom in ATOMS
    ]
    for j in range(4):  # random multi-atom bundles with arbitrary stickers
        size = int(rng.integers(2, len(ATOMS) + 1))
        atoms = list(rng.choice(ATOMS, size=size, replace=False))
        bundles.append(
            bundle(f"combo{j}", atoms, float(rng.uniform(10, 90)))
        )
    return bundles


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for seed in range(12):
        catalog = random_catalog(seed)
        naive = NaivePricer(catalog)
        closure = ArbitrageFreePricer(catalog)
        naive_violations = exhaustive_arbitrage_search(naive, ATOMS)
        closure_violations = exhaustive_arbitrage_search(closure, ATOMS)
        worst = max(
            ((direct - split) / direct
             for _s, direct, split in naive_violations),
            default=0.0,
        )
        rows.append(
            (seed, len(naive_violations), len(closure_violations),
             round(worst * 100, 1))
        )
    return rows


def test_e6_report(sweep, table, benchmark):
    table(
        ["catalog seed", "naive arbitrage sets", "closure arbitrage sets",
         "worst naive overprice %"],
        sweep,
        title="E6: split-arbitrage search over all 31 atom subsets",
    )
    pricer = ArbitrageFreePricer(random_catalog(0))
    benchmark(pricer.price, ATOMS)


def test_e6_closure_is_always_arbitrage_free(sweep):
    for _seed, _naive, closure_violations, _worst in sweep:
        assert closure_violations == 0


def test_e6_naive_is_usually_arbitrageable(sweep):
    vulnerable = sum(1 for _s, n, _c, _w in sweep if n > 0)
    assert vulnerable >= len(sweep) // 2


def test_e6_closure_never_exceeds_naive():
    for seed in range(6):
        catalog = random_catalog(seed)
        naive = NaivePricer(catalog)
        closure = ArbitrageFreePricer(catalog)
        for mask in range(1, 1 << len(ATOMS)):
            subset = [ATOMS[i] for i in range(len(ATOMS)) if mask & (1 << i)]
            try:
                naive_price = naive.price(subset)
            except PricingError:
                continue
            assert closure.price(subset) <= naive_price + 1e-9


def test_e6_monotonicity_spot_check():
    pricer = ArbitrageFreePricer(random_catalog(3))
    assert pricer.check_monotone_sample(ATOMS)
