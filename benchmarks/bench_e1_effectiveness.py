"""E1 — Market-design effectiveness under strategic populations (§6.1).

The paper's evaluation plan: simulate market designs against truthful,
strategic (shading/overbidding), ignorant, risk-loving and faulty player
populations and measure how revenue, welfare, and the honest players'
utility hold up.  Expected shape: incentive-compatible designs (Vickrey,
RSOP, posted) keep truthful players' utility non-negative and degrade
gracefully; revenue under universal shading collapses for posted prices but
not for second-price-style rules.
"""

from __future__ import annotations

import pytest

from repro.mechanisms import PostedPriceMechanism, RSOPAuction, VickreyAuction
from repro.simulator import (
    SimulationConfig,
    compare_designs,
    simulate_mechanism,
    uniform_values,
)

POPULATIONS = {
    "truthful": {"truthful": 1.0},
    "shading": {"shading": 1.0},
    "overbidding": {"overbidding": 1.0},
    "ignorant": {"ignorant": 1.0},
    "faulty": {"faulty": 1.0},
    "mixed": {
        "truthful": 0.4, "shading": 0.2, "overbidding": 0.1,
        "ignorant": 0.15, "faulty": 0.15,
    },
}

MECHANISMS = [
    VickreyAuction(k=1),
    RSOPAuction(seed=0),
    PostedPriceMechanism(price=50.0),  # Myerson price for U[0, 100]
]


@pytest.fixture(scope="module")
def grid():
    return compare_designs(
        MECHANISMS,
        POPULATIONS,
        uniform_values(0, 100),
        n_rounds=120,
        n_buyers=12,
        seed=7,
    )


def test_e1_report(grid, table, benchmark):
    benchmark(
        simulate_mechanism,
        SimulationConfig(
            mechanism=VickreyAuction(k=1),
            n_rounds=20,
            n_buyers=12,
            strategy_mix=POPULATIONS["mixed"],
            value_sampler=uniform_values(0, 100),
            seed=1,
        ),
    )
    rows = []
    for (mech, pop), m in sorted(grid.items()):
        honest = m.by_strategy.get("truthful")
        rows.append(
            (
                mech,
                pop,
                round(m.revenue_per_round, 1),
                round(m.welfare / m.rounds, 1),
                m.transactions,
                round(honest.mean_utility, 1) if honest else "-",
            )
        )
    table(
        ["mechanism", "population", "rev/round", "welfare/round",
         "transactions", "truthful mean utility"],
        rows,
        title="E1: designs under strategic populations (12 buyers, 120 rounds)",
    )


def test_e1_truthful_players_never_lose(grid):
    """IC designs guarantee non-negative utility to truthful players."""
    for (mech, _pop), m in grid.items():
        honest = m.by_strategy.get("truthful")
        if honest is not None:
            assert honest.utility >= -1e-9, (mech, honest.utility)


def test_e1_shading_collapses_posted_but_not_vickrey(grid):
    """Posted-price revenue halves under universal shading of U[0,100]
    values (bids 0.7v clear 50 only when v >= 71); Vickrey still sells every
    round because allocation depends on relative ranks."""
    posted_truthful = grid[("posted", "truthful")].revenue
    posted_shading = grid[("posted", "shading")].revenue
    assert posted_shading < 0.75 * posted_truthful
    vickrey_truthful = grid[("vickrey", "truthful")].transactions
    vickrey_shading = grid[("vickrey", "shading")].transactions
    assert vickrey_shading == vickrey_truthful  # one sale per round


def test_e1_overbidding_hurts_the_overbidders(grid):
    """Overbidders win more but pay above value: negative mean utility
    is the textbook outcome under second-price with universal overbidding."""
    m = grid[("vickrey", "overbidding")]
    over = m.by_strategy["overbidding"]
    truthful_m = grid[("vickrey", "truthful")]
    honest = truthful_m.by_strategy["truthful"]
    assert over.mean_utility < honest.mean_utility


def test_e1_welfare_highest_under_truthful_vickrey(grid):
    """Vickrey + truthful players allocate to the highest-value buyer:
    welfare under any distorted population cannot exceed it."""
    best = grid[("vickrey", "truthful")].welfare
    for pop in ("shading", "ignorant", "faulty", "mixed"):
        assert grid[("vickrey", pop)].welfare <= best * 1.001


