"""E12 — Extrinsic (supply/demand) pricing vs intrinsic properties (§2).

"The price of a dataset is set by the arbiter based on the economic
principles of supply and demand.  A dataset that lots of buyers want will
be priced higher than a dataset that is hardly ever requested, regardless
of the intrinsic properties of such datasets."

Two datasets: D_quality has pristine intrinsic properties (no nulls, fresh)
but only 3 interested buyers; D_demand has 30% nulls but 60 interested
buyers.  Tatonnement prices both.  Expected shape: the noisy, high-demand
dataset clears at a much higher price — value is extrinsic; plus the price
path converges into the theoretical clearing band for every demand curve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pricing import (
    clearing_price_bounds,
    demand_from_valuations,
    tatonnement,
)

SUPPLY = 2


def buyers_for(n: int, mean: float, seed: int) -> list[float]:
    rng = np.random.default_rng(seed)
    return [float(v) for v in rng.uniform(mean * 0.5, mean * 1.5, size=n)]


@pytest.fixture(scope="module")
def scenario():
    # same per-buyer valuation scale; only the *number* of buyers differs
    quality_buyers = buyers_for(3, 40.0, seed=1)  # pristine but niche
    demand_buyers = buyers_for(60, 40.0, seed=2)  # noisy but hot
    results = {}
    for name, valuations in (
        ("D_quality (0% nulls, 3 buyers)", quality_buyers),
        ("D_demand (30% nulls, 60 buyers)", demand_buyers),
    ):
        demand = demand_from_valuations(valuations)
        result = tatonnement(demand, supply=SUPPLY, initial_price=1.0,
                             learning_rate=0.15)
        lower, upper = clearing_price_bounds(valuations, SUPPLY)
        results[name] = (result, lower, upper, valuations)
    return results


def test_e12_report(scenario, table, benchmark):
    rows = []
    for name, (result, lower, upper, _vals) in scenario.items():
        rows.append(
            (
                name,
                round(result.price, 2),
                f"[{lower:.1f}, {upper:.1f}]",
                result.iterations,
                result.converged,
            )
        )
    table(
        ["dataset", "tatonnement price", "clearing band", "iterations",
         "converged"],
        rows,
        title=f"E12: price tracks demand, not intrinsic quality (supply={SUPPLY})",
    )
    valuations = buyers_for(60, 40.0, seed=2)
    demand = demand_from_valuations(valuations)
    benchmark(tatonnement, demand, SUPPLY, 1.0, 0.15)


def test_e12_demand_dominates_quality(scenario):
    (quality_key, demand_key) = list(scenario)
    quality_price = scenario[quality_key][0].price
    demand_price = scenario[demand_key][0].price
    # the hot noisy dataset prices well above the pristine niche one
    assert demand_price > 1.5 * quality_price


def test_e12_prices_land_in_clearing_band(scenario):
    for name, (result, lower, upper, _vals) in scenario.items():
        assert result.converged, name
        assert lower * 0.9 <= result.price <= upper * 1.1, name


def test_e12_price_path_monotone_demand():
    """Sanity: demand is non-increasing along the discovered price path."""
    valuations = buyers_for(40, 40.0, seed=3)
    demand = demand_from_valuations(valuations)
    checks = sorted({p for p, _d in
                     tatonnement(demand, 3, 1.0, 0.2).history})
    demands = [demand(p) for p in checks]
    assert all(b <= a for a, b in zip(demands, demands[1:]))
