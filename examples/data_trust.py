"""A data trust: individuals pool personal data and share the proceeds.

Section 4.5: an individual's data "is not worth much in itself — but
quickly raises its value when aggregated with other users".  Three users
pool their wearable step counts into a trust; the trust sells the pooled
dataset (joined with a vendor's demographic features) on the market; the
sale price flows back to members in proportion to how many of *their* rows
the sold mashup actually used — computed from row-level provenance.

Run:  python examples/data_trust.py
"""

from repro import Arbiter, BuyerPlatform, exclusive_auction_market
from repro.datagen import make_classification_world
from repro.market import DataTrust
from repro.relation import Column, Relation, Schema

SCHEMA = Schema([Column("entity_id", "int", "entity"),
                 Column("steps", "int")])


def main() -> None:
    # --- members contribute slices of the entity universe ----------------
    trust = DataTrust("wearables", SCHEMA)
    slices = {"ana": (0, 50), "ben": (50, 110), "chi": (110, 130)}
    for member, (lo, hi) in slices.items():
        trust.contribute(
            member,
            Relation(member, SCHEMA, [(i, 37 * i % 9000) for i in range(lo, hi)]),
        )
    pooled = trust.pooled_dataset()
    print(f"trust pools {len(pooled)} rows from {trust.members}")

    # --- the trust sells on a normal market ------------------------------
    world = make_classification_world(
        n_entities=130, feature_weights=(2.0,), dataset_features=((0,),),
        seed=8,
    )
    arbiter = Arbiter(exclusive_auction_market(k=1, reserve=15.0))
    arbiter.accept_dataset(world.datasets[0], seller="demographics_vendor")
    arbiter.accept_dataset(pooled, seller="wearables_trust")

    buyer = BuyerPlatform("insurer")
    arbiter.register_participant("insurer", funding=300.0)
    buyer.submit(arbiter, buyer.completeness_wtp(
        wanted_keys=list(range(130)),
        attributes=["f0", "steps"],
        price_steps=[(0.8, 60.0)],
    ))
    result = arbiter.run_round()
    delivery = result.deliveries[0]
    print(f"\nmashup sold for {delivery.price_paid:.2f} "
          f"(sources: {delivery.mashup.plan.sources()})")
    trust_revenue = delivery.split.dataset_shares["wearables"]
    print(f"trust's revenue share: {trust_revenue:.2f}")

    # --- member-level payout from row provenance --------------------------
    payouts = trust.distribute(delivery.mashup.relation, trust_revenue)
    print("\nmember statement (payout tracks rows actually sold):")
    print(trust.statement().pretty())
    assert abs(sum(payouts.values()) - trust_revenue) < 1e-6


if __name__ == "__main__":
    main()
