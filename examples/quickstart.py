"""Quickstart: a complete external data market through the DataMarket façade.

Two sellers share feature datasets, a buyer ships a classification task in
a WTP function ("$100 for >= 75% accuracy, $150 for >= 85%"), and the
platform assembles the mashup, clears the price, and splits the revenue —
all through one typed API: register_dataset / search / plan / submit_wtp /
run_round, each returning a frozen result stamped with the graph version
(`as_of`) it was computed against.

Run:  python examples/quickstart.py
"""

from repro import BuyerPlatform, DataMarket, external_market
from repro.datagen import make_classification_world


def main() -> None:
    # --- synthetic world: features split across two sellers -------------
    world = make_classification_world(
        n_entities=400,
        feature_weights=(2.0, 1.5, 0.0, 2.5),  # f2 is a noise feature
        dataset_features=((0, 1), (2, 3)),
        seed=42,
    )

    # --- one platform object owns the whole stack ------------------------
    market = DataMarket(external_market(commission=0.1))

    for seller, dataset in zip(("alice", "bob"), world.datasets):
        receipt = market.register_dataset(
            dataset, seller=seller, reserve_price=1.0
        )
        print(f"registered {receipt.dataset!r} v{receipt.version} "
              f"for {receipt.seller} (as_of graph v{receipt.as_of})")

    # --- discovery and planning are first-class reads ---------------------
    hits = market.search(["f0", "f1", "f3"])
    print(f"\nsearch: {hits.datasets} (as_of {hits.as_of})")
    plan = market.plan(["f0", "f1", "f3"], key="entity_id")
    print(f"best plan ({len(plan)} candidates, cached={plan.cached}):")
    print("  " + plan.best.plan.describe().replace("\n", "\n  "))
    # an identical repeat request is served from the plan cache
    assert market.plan(["f0", "f1", "f3"], key="entity_id").cached

    # --- three competing buyers with different price curves ---------------
    # (RSOP prices each half of the market from the other half, so revenue
    # needs competition — a lone bidder gets the data for free)
    buyers = []
    curves = [
        [(0.75, 100.0), (0.85, 150.0)],
        [(0.75, 80.0), (0.85, 120.0)],
        [(0.75, 60.0), (0.85, 90.0)],
    ]
    for i, steps in enumerate(curves):
        buyer = BuyerPlatform(f"b{i}")
        market.register_participant(f"b{i}", funding=500.0)
        market.attach_buyer_platform(buyer)
        market.submit_wtp(buyer.classification_wtp(
            labels=world.label_relation,
            features=["f0", "f1", "f3"],
            price_steps=steps,
        ))
        buyers.append(buyer)

    # --- one market round -------------------------------------------------
    report = market.run_round()
    print(f"\n=== round {report.round_index} result ===")
    print(f"transactions: {report.transactions}")
    for delivery in report.deliveries:
        print(f"buyer {delivery.buyer} paid {delivery.price_paid:.2f} "
              f"for satisfaction {delivery.satisfaction:.3f}")
        print("revenue split:")
        print(f"  arbiter fee: {delivery.split.arbiter_fee:.2f}")
        for dataset, share in sorted(delivery.split.dataset_shares.items()):
            print(f"  {dataset}: {share:.2f}")

    winners = [b for b in buyers if b.deliveries]
    if winners:
        print("\n=== delivered mashup (head) ===")
        print(winners[0].latest.relation.head(5).pretty())

    print("\n=== ledger ===")
    for account in market.ledger.accounts:
        print(f"  {account}: {market.ledger.balance(account):.2f}")
    print(f"audit log verifies: {market.audit.verify()}")


if __name__ == "__main__":
    main()
