"""Quickstart: a complete external data market in ~60 lines.

Two sellers share feature datasets, a buyer ships a classification task in
a WTP function ("$100 for >= 75% accuracy, $150 for >= 85%"), and the
arbiter assembles the mashup, clears the price, and splits the revenue.

Run:  python examples/quickstart.py
"""

from repro import Arbiter, BuyerPlatform, SellerPlatform, external_market
from repro.datagen import make_classification_world


def main() -> None:
    # --- synthetic world: features split across two sellers -------------
    world = make_classification_world(
        n_entities=400,
        feature_weights=(2.0, 1.5, 0.0, 2.5),  # f2 is a noise feature
        dataset_features=((0, 1), (2, 3)),
        seed=42,
    )

    # --- market setup ----------------------------------------------------
    arbiter = Arbiter(external_market(commission=0.1))

    alice = SellerPlatform("alice")
    alice.package(world.datasets[0], reserve_price=1.0)
    alice.share_all(arbiter)

    bob = SellerPlatform("bob")
    bob.package(world.datasets[1], reserve_price=1.0)
    bob.share_all(arbiter)

    # --- three competing buyers with different price curves ---------------
    # (RSOP prices each half of the market from the other half, so revenue
    # needs competition — a lone bidder gets the data for free)
    buyers = []
    curves = [
        [(0.75, 100.0), (0.85, 150.0)],
        [(0.75, 80.0), (0.85, 120.0)],
        [(0.75, 60.0), (0.85, 90.0)],
    ]
    for i, steps in enumerate(curves):
        buyer = BuyerPlatform(f"b{i}")
        arbiter.register_participant(f"b{i}", funding=500.0)
        arbiter.attach_buyer_platform(buyer)
        buyer.submit(arbiter, buyer.classification_wtp(
            labels=world.label_relation,
            features=["f0", "f1", "f3"],
            price_steps=steps,
        ))
        buyers.append(buyer)

    # --- one market round -------------------------------------------------
    result = arbiter.run_round()
    print("=== round result ===")
    print(f"transactions: {result.transactions}")
    for delivery in result.deliveries:
        print(f"buyer {delivery.buyer} paid {delivery.price_paid:.2f} "
              f"for satisfaction {delivery.satisfaction:.3f}")
        print("mashup plan:")
        print("  " + delivery.mashup.plan.describe().replace("\n", "\n  "))
        print("revenue split:")
        print(f"  arbiter fee: {delivery.split.arbiter_fee:.2f}")
        for dataset, share in sorted(delivery.split.dataset_shares.items()):
            print(f"  {dataset}: {share:.2f}")

    winners = [b for b in buyers if b.deliveries]
    if winners:
        print("\n=== delivered mashup (head) ===")
        print(winners[0].latest.relation.head(5).pretty())

    print("\n=== ledger ===")
    for account in arbiter.ledger.accounts:
        print(f"  {account}: {arbiter.ledger.balance(account):.2f}")
    print(f"audit log verifies: {arbiter.audit.verify()}")


if __name__ == "__main__":
    main()
