"""The privacy-value connection (Sections 4.2 and 8.2).

A seller holds a sensitive feature dataset.  Before sharing, the seller
perturbs the features with epsilon-differential privacy; the price menu
charges more for higher epsilon (less noise).  The buyer's classifier
accuracy — and hence what the buyer will pay — rises with epsilon, tracing
the trade-off curve the paper describes: "the higher the privacy level, the
higher the price of the dataset".

Run:  python examples/privacy_tradeoff.py
"""

import numpy as np

from repro.datagen import make_classification_world
from repro.ml import LogisticRegression, accuracy, train_test_split
from repro.pricing import PrivacyPriceMenu
from repro.privacy import PrivacyAccountant, perturb_numeric_column


def main() -> None:
    world = make_classification_world(
        n_entities=600,
        feature_weights=(2.0, 1.5),
        dataset_features=((0, 1),),
        seed=3,
    )
    clean = world.datasets[0]
    labels = {r[0]: r[1] for r in world.label_relation.rows}

    menu = PrivacyPriceMenu("features", clean_price=100.0, epsilon_half=1.0)
    accountant = PrivacyAccountant()
    accountant.register("features", epsilon_budget=50.0)
    rng = np.random.default_rng(0)

    print(f"{'epsilon':>8} | {'price':>7} | {'accuracy':>8}")
    print("-" * 31)
    for epsilon in (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 20.0):
        quote = menu.quote(epsilon, accountant)
        accountant.spend("features", epsilon, purpose="release")
        noisy = clean
        for column in ("f0", "f1"):
            noisy = perturb_numeric_column(
                noisy, column, epsilon, rng, sensitivity=1.0
            )
        x = np.array(
            [[r[1], r[2]] for r in noisy.rows], dtype=float
        )
        y = np.array([labels[r[0]] for r in noisy.rows], dtype=int)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, seed=1)
        model = LogisticRegression(epochs=150).fit(x_tr, y_tr)
        acc = accuracy(y_te, model.predict(x_te))
        print(f"{epsilon:>8.2f} | {quote.price:>7.2f} | {acc:>8.3f}")

    print(f"\nprivacy budget remaining: "
          f"{accountant.remaining('features'):.2f}")
    print("higher epsilon -> less noise -> higher accuracy -> higher price")


if __name__ == "__main__":
    main()
