"""Fig. 1's loop: design -> simulate -> refine -> deploy.

1. The market design toolbox produces two candidate rule sets for an
   external market (Vickrey vs GSP-style clearing).
2. The market simulator stresses both against strategic populations
   (Section 6.1): truthful, shading, ignorant, faulty.
3. The design that stays incentive-compatible is deployed on the DMMS and
   serves a real buyer.

Run:  python examples/design_simulate_deploy.py
"""

from repro import Arbiter, BuyerPlatform, SellerPlatform, MarketDesign
from repro.datagen import make_classification_world
from repro.mechanisms import GSPAuction, VickreyAuction
from repro.simulator import (
    Shading,
    compare_designs,
    empirical_ic_regret,
    uniform_values,
)


def main() -> None:
    # --- (1) two candidate designs from the toolbox ------------------------
    candidates = [VickreyAuction(k=1), GSPAuction(slot_weights=(1.0, 0.8))]

    # --- (2) simulate before deploying (Section 6.1) ------------------------
    sampler = uniform_values(0, 100)
    print("=== IC regret (utility gained by shading vs truthful) ===")
    chosen = None
    for mechanism in candidates:
        regret = empirical_ic_regret(
            mechanism, Shading(0.6), sampler, n_rivals=2, n_trials=400,
            seed=1,
        )
        verdict = "IC holds" if regret <= 1e-9 else "MANIPULABLE"
        print(f"  {mechanism.name:>8}: regret {regret:+8.3f}  [{verdict}]")
        if regret <= 1e-9 and chosen is None:
            chosen = mechanism

    grid = compare_designs(
        candidates,
        {
            "all truthful": {"truthful": 1.0},
            "half shading": {"truthful": 0.5, "shading": 0.5},
            "noisy world": {"truthful": 0.4, "ignorant": 0.3, "faulty": 0.3},
        },
        sampler,
        n_rounds=60,
        n_buyers=12,
        seed=2,
    )
    print("\n=== revenue per round under stress populations ===")
    print(f"{'mechanism':>10} | {'population':>14} | {'rev/round':>9} | "
          f"{'welfare':>9}")
    for (mech, pop), metrics in sorted(grid.items()):
        print(f"{mech:>10} | {pop:>14} | {metrics.revenue_per_round:>9.1f} | "
              f"{metrics.welfare:>9.1f}")

    # --- (3) deploy the surviving design on the DMMS ------------------------
    assert chosen is not None
    design = MarketDesign(
        name="simulation-approved",
        goal="revenue",
        incentive="money",
        elicitation="upfront",
        mechanism=chosen,
        revenue_sharing="provenance",
        arbiter_commission=0.1,
    )
    design.validate()
    print(f"\ndeploying: {design.summary()}")

    world = make_classification_world(
        n_entities=300, feature_weights=(2.0, 1.5, 2.5),
        dataset_features=((0, 1), (2,)), seed=4,
    )
    arbiter = Arbiter(design)
    for i, dataset in enumerate(world.datasets):
        seller = SellerPlatform(f"s{i}")
        seller.package(dataset)
        seller.share_all(arbiter)
    buyer = BuyerPlatform("b1")
    arbiter.register_participant("b1", funding=500.0)
    arbiter.attach_buyer_platform(buyer)
    buyer.submit(arbiter, buyer.classification_wtp(
        labels=world.label_relation,
        features=["f0", "f1", "f2"],
        price_steps=[(0.8, 100.0)],
    ))
    result = arbiter.run_round()
    print(f"deployed market cleared {result.transactions} transaction(s); "
          f"revenue {result.revenue:.2f}")


if __name__ == "__main__":
    main()
