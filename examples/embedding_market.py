"""An embeddings market: versioned vector data (Section 4.5).

"Embeddings and vector data are growing fast...  we expect companies will
rely on the exchange of pre-trained embeddings more and more."  A vendor
owns full-precision embeddings and — following Varian's versioning logic —
also lists a cheap sign-quantized version.  Two buyer segments submit
EmbeddingSimilarityTask WTPs with different quality gates; the market
routes each to the version matching their willingness to pay.

Run:  python examples/embedding_market.py
"""

import numpy as np

from repro import Arbiter, BuyerPlatform, exclusive_auction_market
from repro.relation import Column, Relation, Schema
from repro.wtp import EmbeddingSimilarityTask, PriceCurve, WTPFunction

DIM = 8
COLS = [f"emb_{i}" for i in range(DIM)]


def embedding_relation(name: str, vectors: np.ndarray,
                       cols=None) -> Relation:
    cols = cols or COLS
    schema = Schema(
        [Column("entity_id", "int", "entity")] +
        [Column(c, "float") for c in cols]
    )
    rows = [(i, *(float(v) for v in vec)) for i, vec in enumerate(vectors)]
    return Relation(name, schema, rows)


def main() -> None:
    rng = np.random.default_rng(1)
    vectors = rng.normal(0, 1, size=(200, DIM))

    # the vendor lists two versions of the same embeddings
    full = embedding_relation("embeddings_fp32", vectors)
    quantized = embedding_relation(
        "embeddings_1bit", np.sign(vectors),
        cols=[f"q_{c}" for c in COLS],
    )

    arbiter = Arbiter(exclusive_auction_market(k=1, reserve=5.0))
    arbiter.accept_dataset(full, seller="vector_vendor")
    arbiter.accept_dataset(quantized, seller="vector_vendor")

    # both buyers hold trusted reference vectors for 20 entities
    refs = embedding_relation("refs", vectors[:20])

    def submit(buyer_name, columns, quality_gate, price):
        buyer = BuyerPlatform(buyer_name)
        arbiter.register_participant(buyer_name, funding=300.0)
        arbiter.attach_buyer_platform(buyer)
        ref = refs if columns == COLS else refs.rename(
            dict(zip(COLS, columns))
        )
        wtp = WTPFunction(
            buyer=buyer_name,
            task=EmbeddingSimilarityTask(
                references=ref, embedding_columns=columns
            ),
            curve=PriceCurve.single(quality_gate, price),
            key="entity_id",
        )
        arbiter.submit_wtp(wtp)
        return buyer

    # the precision-hungry lab demands near-exact vectors
    submit("research_lab", COLS, quality_gate=0.99, price=80.0)
    result_lab = arbiter.run_round()
    # the startup is happy with directional (1-bit) vectors, pays less
    submit("startup", [f"q_{c}" for c in COLS], quality_gate=0.85,
           price=20.0)
    result_startup = arbiter.run_round()

    for label, result in (("research lab", result_lab),
                          ("startup", result_startup)):
        for d in result.deliveries:
            print(f"{label}: bought {d.mashup.plan.sources()} "
                  f"(satisfaction {d.satisfaction:.3f}, "
                  f"paid {d.price_paid:.2f})")
    print(f"\nvendor earned: "
          f"{arbiter.ledger.balance('vector_vendor'):.2f}")
    print(f"audit verifies: {arbiter.audit.verify()}")


if __name__ == "__main__":
    main()
