"""Data fusion: contrasting weather signals from multiple sellers (Section 1).

"Data fusion operators are appropriate when buyers want to contrast
different sources of information that contribute the same data, i.e.,
weather forecast signals coming from a city dataset, a sensor, and a
phone."  Three sellers report temperatures with different reliability; the
buyer first inspects the raw non-1NF contrast view, then lets truth
discovery resolve it — and the learned source weights expose who to trust.

Run:  python examples/fusion_contrast.py
"""

from repro.datagen import conflicting_sources
from repro.fusion import (
    auto_signals,
    conflict_report,
    fuse,
    resolve,
    resolve_fused_with_truth_discovery,
)


def main() -> None:
    truth, sources = conflicting_sources(
        n_sources=3,
        n_entities=12,
        accuracies=[0.95, 0.7, 0.4],  # city feed, sensor, phone
        vocabulary=("clear", "rain", "snow", "fog"),
        seed=5,
    )
    named = [
        src.renamed(name).with_provenance_root(name)
        for src, name in zip(sources, ("city_feed", "sensor", "phone"))
    ]

    fused = fuse(named, "entity_id", auto_signals(named, "entity_id"))
    print("=== non-1NF contrast view (each cell keeps every signal) ===")
    for row in fused.to_dicts()[:5]:
        print(f"  station {row['entity_id']}: {row['claim']}")

    print("\n=== conflict report ===")
    print(conflict_report(fused).pretty())

    print("\n=== resolution strategies ===")
    majority = resolve(fused, "majority")
    truth_map = dict(truth.rows)

    def accuracy(rel):
        return sum(
            1 for k, v in rel.rows if truth_map[k] == v
        ) / len(rel)

    print(f"majority vote accuracy: {accuracy(majority):.2f}")

    td = resolve_fused_with_truth_discovery(fused, "entity_id", "claim")
    td_acc = td.accuracy_against(truth_map)
    print(f"truth discovery accuracy: {td_acc:.2f}")
    print("learned source weights (who to trust):")
    for source, weight in sorted(
        td.source_weights.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {source}: {weight:.3f}")

    # provenance: a fused row is jointly owed to every contributing source
    print("\nfused-row provenance (revenue sharing input):")
    print(f"  station 0 <- {sorted(fused.provenance[0].sources())}")


if __name__ == "__main__":
    main()
