"""Internal market: breaking data silos with bonus points (Section 3.3).

Teams inside one organization hoard datasets in silos.  The internal market
design allocates data to everyone who wants it (posted price 0 — welfare
maximization) and rewards sharing teams with minted bonus points, so data
owners have a reason to publish.  Accountability lets each team audit
exactly where its data went.

Run:  python examples/internal_market.py
"""

from repro import BuyerPlatform, DataMarket, SellerPlatform, internal_market
from repro.datagen import CorpusSpec, generate_corpus


def main() -> None:
    # a corpus of departmental datasets carved from one hidden wide table
    corpus = generate_corpus(CorpusSpec(
        n_entities=300,
        n_numeric=4,
        n_categorical=2,
        n_datasets=6,
        columns_per_dataset=3,
        rename_probability=0.0,
        affine_probability=0.0,
        code_probability=0.0,
        noisy_copy_probability=0.0,
        seed=11,
    ))

    market = DataMarket(internal_market(grant=100.0))
    teams = {}
    for i, dataset in enumerate(corpus.datasets):
        team = SellerPlatform(f"team_{i}")
        team.package(dataset)
        team.share_all(market)
        teams[team.seller_id] = team

    print(f"datasets shared: {market.datasets}")

    # the analytics team needs attributes scattered across silos
    analytics = BuyerPlatform("analytics")
    market.register_participant("analytics")
    market.attach_buyer_platform(analytics)
    wtp = analytics.completeness_wtp(
        wanted_keys=list(range(200)),
        attributes=["num_0", "num_1", "cat_0"],
        price_steps=[(0.5, 10.0)],
    )
    analytics.submit(market, wtp)
    result = market.run_round()

    print(f"\ntransactions: {result.transactions}")
    for delivery in result.deliveries:
        print("mashup sources:", delivery.mashup.plan.sources())
        print(f"price paid (points): {delivery.price_paid:.1f}  "
              f"(welfare-maximizing design: data is free)")

    print("\nbonus points earned by sharing teams:")
    grant = internal_market().participation_grant
    for team_id in sorted(teams):
        earned = market.ledger.balance(team_id) - grant
        if earned > 0:
            print(f"  {team_id}: +{earned:.1f} points")

    print("\naccountability: where did team data go?")
    for team_id, team in sorted(teams.items()):
        sales = team.my_sales(market)
        sold = {ds: rev for ds, rev in sales.items()
                if market.lineage.sales_of(ds)}
        for ds in sold:
            for record in market.lineage.sales_of(ds):
                print(f"  {ds} -> buyer {record.buyer} "
                      f"(mashup of {list(record.mashup_sources)})")


if __name__ == "__main__":
    main()
