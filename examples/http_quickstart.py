"""HTTP quickstart: the same market, but over a socket.

Spins up a :class:`~repro.platform.MarketGateway` on an ephemeral port
(exactly what ``python -m repro.platform.http`` does behind CLI flags),
then drives the full lifecycle through the typed
:class:`~repro.platform.MarketClient`: register → search → plan+collect →
submit WTPs → clear a round → retire.  The client returns the same frozen
result dataclasses as the in-process façade — ``RegisterResult`` and
``SearchResult`` coming off the wire compare *equal* to façade ones — and
a typed error taxonomy: a foreign-seller update raises
``DatasetOwnershipError`` (HTTP 403), a bad token ``AuthenticationError``
(401).

Run:  python examples/http_quickstart.py
"""

from repro import DataMarket
from repro.errors import AuthenticationError, DatasetOwnershipError
from repro.platform import MarketClient, MarketGateway, MarketService
from repro.relation import Column, Relation
from repro.wtp import PriceCurve, QueryCompletenessTask, WTPFunction


def feature_relation(name: str, offset: float) -> Relation:
    return Relation(
        name,
        [Column("entity_id", "int"), Column(f"{name}_val", "float")],
        [(i, offset + i) for i in range(40)],
    )


def main() -> None:
    # --- serve one MarketService over HTTP --------------------------------
    service = MarketService(DataMarket())
    gateway = MarketGateway(
        service,
        tokens={
            "s3cret-alice": "alice",   # bearer token -> principal
            "s3cret-bob": "bob",
            "s3cret-b1": "b1",
            "s3cret-b2": "b2",
        },
        rate_limit=200.0,  # requests/second per token; 429 beyond
    ).start()
    print(f"gateway listening on {gateway.url}")

    try:
        alice = MarketClient(gateway.url, token="s3cret-alice")
        bob = MarketClient(gateway.url, token="s3cret-bob")
        anyone = MarketClient(gateway.url)  # reads need no token

        # --- sellers register over the wire -------------------------------
        for client, name, offset in (
            (alice, "base", 0.0), (bob, "ext", 100.0)
        ):
            receipt = client.register_dataset(
                feature_relation(name, offset), reserve_price=1.0
            )
            print(f"registered {receipt.dataset!r} "
                  f"for {receipt.seller} (as_of {receipt.as_of})")

        # the token IS the seller: bob cannot touch alice's dataset
        try:
            bob.update_dataset(feature_relation("base", 9.0))
        except DatasetOwnershipError as exc:
            print(f"403 as expected: {exc}")
        try:
            MarketClient(gateway.url, token="wrong").retire_dataset("base")
        except AuthenticationError as exc:
            print(f"401 as expected: {exc}")

        # --- discovery + planning are unauthenticated reads ---------------
        hits = anyone.search(["base_val", "ext_val"])
        print(f"\nsearch: {hits.datasets} (as_of {hits.as_of})")
        plan = anyone.plan(
            ["entity_id", "base_val", "ext_val"], key="entity_id"
        )
        best = plan.best
        print(f"best mashup joins {best.datasets}: "
              f"{len(best.rows)} rows collected server-side")

        # --- two competing buyers (RSOP needs competition) -----------------
        b1 = MarketClient(gateway.url, token="s3cret-b1")
        b2 = MarketClient(gateway.url, token="s3cret-b2")
        for client, buyer, price in ((b1, "b1", 20.0), (b2, "b2", 15.0)):
            client.register_participant(buyer, funding=100.0)
            client.submit_wtp(WTPFunction(
                buyer=buyer,  # informational; the token decides
                task=QueryCompletenessTask(
                    wanted_keys=tuple(range(40)),
                    attributes=("entity_id", "base_val", "ext_val"),
                    key="entity_id",
                ),
                curve=PriceCurve.single(0.5, price),
            ))

        summary = b1.run_round()
        print(f"\n=== round {summary.round_index} "
              f"(as_of {summary.as_of}) ===")
        print(f"transactions: {summary.transactions}, "
              f"revenue: {summary.revenue:.2f}")
        for d in summary.deliveries:
            shares = ", ".join(
                f"{ds}={share:.2f}" for ds, share in d.seller_shares
            )
            print(f"  {d.buyer} paid {d.price_paid:.2f} "
                  f"for {d.datasets} -> {shares}")
        for buyer, reason in summary.rejections:
            print(f"  {buyer} rejected: {reason}")

        # --- observability -------------------------------------------------
        stats = anyone.stats()
        print(f"\nrequests served: {stats['requests']['total']}, "
              f"p99: {stats['latency_ms']['p99']}ms, "
              f"writes applied: {stats['service']['writes_applied']}")
    finally:
        gateway.stop()
        service.close()


if __name__ == "__main__":
    main()
