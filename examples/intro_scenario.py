"""The paper's Section 1 example, end to end.

* Buyer b1 wants features <a, b, d, e> and >= 80% accuracy.
* Seller 1 shares s1 = <a, b, c>.
* Seller 2 shares s2 = <a, b', f(d)> where f(d) = 1.8*d + 32.
* Nobody owns e: the gap drives a negotiation round, and an opportunistic
  Seller 3 collects it for the bounty (Section 7.1).

The arbiter synthesizes the inverse map f' from the buyer's query-by-example
rows, joins the sellers' data, trains the classifier, and only charges when
the accuracy gate is met.

Run:  python examples/intro_scenario.py
"""

from repro import BuyerPlatform, DataMarket, exclusive_auction_market
from repro.datagen import intro_scenario
from repro.relation import Column, Relation
from repro.simulator import OpportunisticSeller


def main() -> None:
    scenario = intro_scenario(seed=7, n_entities=500)
    s1, s2, labels = scenario["s1"], scenario["s2"], scenario["labels"]
    world = scenario["world"]

    # Vickrey with a reserve: a lone bidder pays the reserve, so sellers
    # earn even without competition (the arbiter's price floor)
    market = DataMarket(exclusive_auction_market(k=1, reserve=10.0))
    market.register_dataset(s1, seller="seller_1")
    market.register_dataset(s2, seller="seller_2")

    buyer = BuyerPlatform("b1")
    market.register_participant("b1", funding=1000.0)
    market.attach_buyer_platform(buyer)

    # query-by-example rows: b1 knows d for a handful of entities, which
    # lets the arbiter synthesize f' (the inverse of f(d) = 1.8 d + 32)
    full = world.full
    d_pos = full.schema.position("f3")
    examples = Relation(
        "examples",
        [Column("entity_id", "int", "entity"), Column("d", "float")],
        [(row[0], float(row[d_pos])) for row in full.rows[:12]],
    )

    wtp = buyer.classification_wtp(
        labels=labels,
        features=["a", "b", "d", "e"],
        price_steps=[(0.80, 100.0), (0.90, 150.0)],
        examples=examples,
    )
    buyer.submit(market, wtp)
    result = market.run_round()

    print("=== round 1: a, b, d served; e is missing ===")
    for delivery in result.deliveries:
        print(f"satisfaction {delivery.satisfaction:.3f}, "
              f"bid {delivery.bid:.0f}, paid {delivery.price_paid:.2f}")
        print("plan:")
        print("  " + delivery.mashup.plan.describe().replace("\n", "\n  "))
        print(f"missing attributes: {list(delivery.mashup.missing)}")

    print("\nopen negotiation requests:")
    for request in market.negotiation.open_requests():
        print(f"  [{request.request_id}] {request.description} "
              f"(bounty {request.bounty:.1f})")

    # --- Seller 3: no data, but time (Section 7.1) -----------------------
    e_pos = full.schema.position("f4")

    def collect_e() -> Relation:
        return Relation(
            "s3_collected_e",
            [Column("entity_id", "int", "entity"), Column("e", "float")],
            [(row[0], float(row[e_pos])) for row in full.rows],
        )

    seller_3 = OpportunisticSeller(
        "seller_3", {"e": collect_e}, collection_cost=0.5
    )
    collected = seller_3.scan_and_collect(market)
    print(f"\nSeller 3 collected: "
          f"{[(r.attribute, r.dataset) for r in collected]}")

    # --- round 2: the full feature set is now available -------------------
    buyer.submit(market, wtp)
    result2 = market.run_round()
    print("\n=== round 2: with e collected ===")
    for delivery in result2.deliveries:
        print(f"satisfaction {delivery.satisfaction:.3f}, "
              f"bid {delivery.bid:.0f}, paid {delivery.price_paid:.2f}")
        print(f"sources: {delivery.mashup.plan.sources()}")
        print("revenue shares:")
        for dataset, share in sorted(delivery.split.dataset_shares.items()):
            print(f"  {dataset}: {share:.2f}")

    print(f"\nSeller 3 earnings so far: {seller_3.earnings(market):.2f}")
    print(f"audit verifies: {market.audit.verify()}")


if __name__ == "__main__":
    main()
