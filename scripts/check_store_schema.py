#!/usr/bin/env python
"""Guard against silent durable-store schema drift.

Three renderings of the :mod:`repro.platform.store` schema must agree:

1. the **live schema** — tables and columns an actual ``MarketStore``
   creates in a fresh SQLite file (``sqlite_master`` + ``PRAGMA
   table_info``, skipping SQLite internals and the FTS shadow tables),
2. the **documented schema** — ``repro.platform.store.TABLES``, the
   module-level column map the store keeps next to its DDL,
3. the **README schema table** — the markdown table in the
   "Durability & concurrency" section.

Whoever edits the DDL must touch all three, and the migration policy
(bump ``SCHEMA_VERSION``) along with it — this script failing in CI is
the reminder.  Usage: ``python scripts/check_store_schema.py``.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.platform.store import TABLES, MarketStore  # noqa: E402

README = ROOT / "README.md"

#: columns whose presence is load-bearing beyond mere three-way agreement —
#: replay refuses mixed-scheme corpora by reading these, so losing one
#: silently would disable the guard rather than fail a query
REQUIRED_COLUMNS: dict[str, tuple[str, ...]] = {
    "column_profiles": ("scheme", "signature", "content_hash"),
}


def live_schema() -> dict[str, tuple[str, ...]]:
    import sqlite3

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "schema_probe.db"
        MarketStore(path)
        conn = sqlite3.connect(path)
        try:
            names = [
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            ]
            schema = {}
            for name in names:
                if name.startswith("sqlite_") or name.startswith("dataset_fts"):
                    continue  # SQLite internals / FTS5 shadow tables
                cols = tuple(
                    row[1]
                    for row in conn.execute(f"PRAGMA table_info({name!r})")
                )
                schema[name] = cols
            return schema
        finally:
            conn.close()


def readme_schema() -> dict[str, tuple[str, ...]]:
    """Parse the README's schema table: | `name` | ... | col, col, ... |"""
    text = README.read_text()
    schema = {}
    for line in text.splitlines():
        m = re.match(r"\|\s*`(\w+)`\s*\|[^|]*\|([^|]+)\|\s*$", line)
        if m and m.group(1) in TABLES:
            cols = tuple(
                c.strip().strip("`") for c in m.group(2).split(",") if c.strip()
            )
            schema[m.group(1)] = cols
    return schema


def diff(label_a: str, a: dict, label_b: str, b: dict) -> list[str]:
    problems = []
    for table in sorted(set(a) | set(b)):
        if table not in a:
            problems.append(f"{table}: in {label_b} but missing from {label_a}")
        elif table not in b:
            problems.append(f"{table}: in {label_a} but missing from {label_b}")
        elif a[table] != b[table]:
            problems.append(
                f"{table}: {label_a} columns {list(a[table])} != "
                f"{label_b} columns {list(b[table])}"
            )
    return problems


def main() -> int:
    live = live_schema()
    documented = dict(TABLES)
    readme = readme_schema()

    problems = diff("live sqlite", live, "store.TABLES", documented)
    for table, required in REQUIRED_COLUMNS.items():
        present = live.get(table, ())
        for col in required:
            if col not in present:
                problems.append(
                    f"{table}: required column {col!r} missing from the "
                    f"live sqlite schema"
                )
    if not readme:
        problems.append(
            f"no schema table found in {README.name} "
            "(expected rows like '| `datasets` | ... | col, col |')"
        )
    else:
        problems += diff("store.TABLES", documented, "README", readme)

    if problems:
        print("STORE SCHEMA DRIFT:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        print(
            "\nkeep the DDL, repro.platform.store.TABLES and the README "
            "schema table in lockstep (and bump SCHEMA_VERSION on any "
            "layout change)",
            file=sys.stderr,
        )
        return 1
    print(
        f"store schema consistent across sqlite, store.TABLES and README "
        f"({len(live)} tables)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
