#!/usr/bin/env python
"""Gate benchmark metrics against committed baselines.

Reads every ``BENCH_E*.json`` the benchmark session wrote (the
``bench_json`` fixture emits one file per experiment, tagged with a
``smoke`` flag) and compares the flat ratio metrics against
``benchmarks/baselines.json``::

    { "E25": { "smoke": {"peak_ratio": 2.0},
               "full":  {"peak_ratio": 2.0, "select_speedup": 5.0} } }

Each baseline value is a **floor**: the run fails (exit 1) when a
metric is present in the baseline but missing from the artifact, falls
below the committed floor, or — the quiet failure mode — a baselined
experiment produced no artifact at all (a bench silently dropped from
the matrix would otherwise "pass" forever).  Experiments without a
baseline entry are reported and skipped — deliberately, so adding a
bench never breaks CI until someone commits floors for it.

Usage: ``python scripts/check_bench_regression.py [artifact_dir]``
(defaults to the current directory, where pytest writes the artifacts).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BASELINES = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines.json"


def check(artifact_dir: Path) -> int:
    baselines = json.loads(BASELINES.read_text())
    artifacts = sorted(artifact_dir.glob("BENCH_E*.json"))
    if not artifacts:
        print(f"no BENCH_E*.json artifacts under {artifact_dir}", file=sys.stderr)
        return 1

    failures: list[str] = []
    covered: set[str] = set()
    for path in artifacts:
        data = json.loads(path.read_text())
        experiment = data.get("experiment", path.stem.replace("BENCH_", ""))
        covered.add(experiment)
        floors = baselines.get(experiment)
        if floors is None:
            print(f"{path.name}: no baseline for {experiment}, skipped")
            continue
        mode = "smoke" if data.get("smoke") else "full"
        for metric, floor in floors.get(mode, {}).items():
            value = data.get(metric)
            if value is None:
                failures.append(
                    f"{path.name}: metric {metric!r} missing "
                    f"(baseline {mode} floor {floor})"
                )
            elif value < floor:
                failures.append(
                    f"{path.name}: {metric} = {value} below "
                    f"{mode} floor {floor}"
                )
            else:
                print(f"{path.name}: {metric} = {value} >= {floor} ({mode}) ok")

    missing = sorted(set(baselines) - covered)
    if missing:
        failures.append(
            f"baselined experiments with no artifact: {missing} — "
            f"artifacts seen: {sorted(covered)} (did a bench drop out "
            f"of the CI matrix?)"
        )

    if failures:
        print("\nBENCH REGRESSIONS:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("all benchmark metrics at or above committed floors")
    return 0


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    raise SystemExit(check(target))
