"""Failure-injection tests: the market must survive hostile/buggy inputs.

Section 6.1: "a faulty piece of software may cause erratic behavior" — the
DMMS must contain it.  These tests inject crashing task packages, insane
satisfaction values, underfunded buyers, tampered audit logs, and privacy
budget exhaustion, and verify the market round completes and records the
incident instead of crashing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import make_classification_world
from repro.errors import AuditError, BudgetExhaustedError
from repro.market import Arbiter, BuyerPlatform, SellerPlatform, external_market
from repro.wtp import PriceCurve, WTPFunction


class CrashingTask:
    """A buyer package that raises an arbitrary (non-market) exception."""

    required_attributes = ["f0"]

    def evaluate(self, relation):
        raise ZeroDivisionError("buyer code divided by zero")


class NaNTask:
    required_attributes = ["f0"]

    def evaluate(self, relation):
        return float("nan")


class OutOfRangeTask:
    required_attributes = ["f0"]

    def evaluate(self, relation):
        return 17.5  # satisfaction must live in [0, 1]


class InfiniteLoopLikeTask:
    """Simulates a hung package via a guard (we can't time out threads in a
    unit test, but we can verify the sandbox catches its watchdog error)."""

    required_attributes = ["f0"]

    def evaluate(self, relation):
        raise TimeoutError("watchdog: task exceeded its CPU budget")


@pytest.fixture
def market():
    world = make_classification_world(
        n_entities=150, feature_weights=(2.0, 1.5),
        dataset_features=((0, 1),), seed=21,
    )
    arbiter = Arbiter(external_market())
    seller = SellerPlatform("s1")
    seller.package(world.datasets[0])
    seller.share_all(arbiter)
    return arbiter, world


@pytest.mark.parametrize(
    "task,expected_kind",
    [
        (CrashingTask(), "wtp_evaluation_crashed"),
        (InfiniteLoopLikeTask(), "wtp_evaluation_crashed"),
        (NaNTask(), "wtp_evaluation_rejected"),
        (OutOfRangeTask(), "wtp_evaluation_rejected"),
    ],
)
def test_hostile_task_contained_and_audited(market, task, expected_kind):
    arbiter, _world = market
    arbiter.register_participant("evil", funding=100.0)
    arbiter.submit_wtp(
        WTPFunction(buyer="evil", task=task, curve=PriceCurve.single(0.5, 10.0))
    )
    result = arbiter.run_round()  # must not raise
    assert result.transactions == 0
    assert any(r.buyer == "evil" for r in result.rejections)
    assert arbiter.audit.records(expected_kind)
    assert arbiter.audit.verify()


def test_hostile_task_does_not_block_honest_buyers(market):
    arbiter, world = market
    arbiter.register_participant("evil", funding=100.0)
    arbiter.submit_wtp(
        WTPFunction(buyer="evil", task=CrashingTask(),
                    curve=PriceCurve.single(0.5, 10.0))
    )
    honest = BuyerPlatform("honest")
    arbiter.register_participant("honest", funding=100.0)
    honest.submit(arbiter, honest.classification_wtp(
        labels=world.label_relation, features=["f0", "f1"],
        price_steps=[(0.7, 50.0)],
    ))
    result = arbiter.run_round()
    assert any(d.buyer == "honest" for d in result.deliveries)


def test_underfunded_buyer_rejected_not_crashed(market):
    arbiter, world = market
    # posted-price-like flow: make the buyer win but lack funds by using a
    # second bidder so RSOP produces a positive price
    for name, funding, price in (("rich", 500.0, 60.0), ("poor", 0.0, 80.0)):
        buyer = BuyerPlatform(name)
        arbiter.register_participant(name, funding=funding)
        buyer.submit(arbiter, buyer.classification_wtp(
            labels=world.label_relation, features=["f0", "f1"],
            price_steps=[(0.7, price)],
        ))
    arbiter.run_round()  # must not raise
    # 'poor' either lost the auction or was rejected for lack of funds;
    # either way, the ledger never went negative
    for account in arbiter.ledger.accounts:
        assert arbiter.ledger.balance(account) >= -1e-9
    assert arbiter.ledger.conservation_check()


def test_tampered_audit_is_detected(market):
    arbiter, _world = market
    arbiter.register_participant("b", funding=10.0)
    # forge a payload after the fact
    record = arbiter.audit.records()[0]
    record.payload["design"] = "forged rules"
    with pytest.raises(AuditError):
        arbiter.audit.verify()


def test_privacy_budget_exhaustion_is_loud():
    world = make_classification_world(
        n_entities=100, feature_weights=(1.0,), dataset_features=((0,),),
        seed=2,
    )
    seller = SellerPlatform("s", privacy_budget=1.0)
    seller.package(world.datasets[0])
    rng = np.random.default_rng(0)
    seller.dp_offer("seller_0", "f0", epsilon=0.9, rng=rng)
    with pytest.raises(BudgetExhaustedError):
        seller.dp_offer("seller_0", "f0", epsilon=0.5, rng=rng)


def test_sane_evaluation_guard():
    from repro.market.arbiter import _sane_evaluation

    assert _sane_evaluation(0.5, 10.0)
    assert _sane_evaluation(0.0, 0.0)
    assert not _sane_evaluation(float("nan"), 1.0)
    assert not _sane_evaluation(0.5, float("inf"))
    assert not _sane_evaluation(1.5, 1.0)
    assert not _sane_evaluation(-0.1, 1.0)
    assert not _sane_evaluation(0.5, -1.0)
    assert not _sane_evaluation(True, 1.0)
    assert not _sane_evaluation("high", 1.0)
    assert not _sane_evaluation(0.5, "expensive")
