"""Tests for market designs and the revenue allocation engine."""

import pytest

from repro.datagen import make_classification_world
from repro.errors import MarketDesignError, ValuationError
from repro.integration import MashupRequest
from repro.market import (
    MarketDesign,
    RevenueAllocationEngine,
    barter_market,
    exclusive_auction_market,
    external_market,
    internal_market,
    provenance_shares,
    row_allocation,
    shapley_shares,
)
from repro.mashup import MashupBuilder
from repro.mechanisms import ExPostMechanism, PostedPriceMechanism
from repro.wtp import ClassificationTask, PriceCurve, WTPFunction


def test_presets_validate():
    for preset in (external_market(), internal_market(), barter_market(),
                   exclusive_auction_market(k=2, reserve=5.0)):
        preset.validate()
        assert preset.summary()


def test_preset_characteristics():
    ext = external_market()
    assert ext.goal == "revenue" and ext.incentive == "money"
    assert ext.expost is not None
    internal = internal_market()
    assert internal.incentive == "points"
    assert internal.arbiter_commission == 0.0
    assert internal.seller_reward > 0
    barter = barter_market()
    assert barter.incentive == "credits"
    assert barter.participation_grant > 0


def test_design_validation_catches_bad_configs():
    base = dict(
        name="x", goal="revenue", incentive="money", elicitation="upfront",
        mechanism=PostedPriceMechanism(price=1.0),
    )
    MarketDesign(**base).validate()
    with pytest.raises(MarketDesignError):
        MarketDesign(**{**base, "goal": "chaos"}).validate()
    with pytest.raises(MarketDesignError):
        MarketDesign(**{**base, "incentive": "favors"}).validate()
    with pytest.raises(MarketDesignError):
        MarketDesign(**{**base, "elicitation": "psychic"}).validate()
    with pytest.raises(MarketDesignError):
        MarketDesign(**{**base, "revenue_sharing": "dice"}).validate()
    with pytest.raises(MarketDesignError):
        MarketDesign(**{**base, "arbiter_commission": 1.0}).validate()
    with pytest.raises(MarketDesignError):
        MarketDesign(**{**base, "participation_grant": -1.0}).validate()
    with pytest.raises(MarketDesignError, match="requires an ExPost"):
        MarketDesign(**{**base, "elicitation": "ex_post"}).validate()


def test_design_rejects_untruthful_expost():
    with pytest.raises(MarketDesignError, match="not truthful"):
        MarketDesign(
            name="x", goal="revenue", incentive="money",
            elicitation="ex_post",
            mechanism=PostedPriceMechanism(price=1.0),
            expost=ExPostMechanism(
                audit_probability=0.05, penalty_multiplier=1.0
            ),
        ).validate()


# -- revenue allocation engine ----------------------------------------------------


@pytest.fixture(scope="module")
def sold_mashup():
    """A mashup joining two sellers' feature datasets, plus its WTP."""
    world = make_classification_world(
        n_entities=250,
        feature_weights=(0.4, 0.4, 3.0, 3.0),  # seller_1 owns the signal
        dataset_features=((0, 1), (2, 3)),
        seed=2,
    )
    builder = MashupBuilder()
    for ds in world.datasets:
        builder.add_dataset(ds)
    wtp = WTPFunction(
        buyer="b1",
        task=ClassificationTask(
            labels=world.label_relation, features=["f0", "f1", "f2", "f3"]
        ),
        curve=PriceCurve.of((0.6, 50.0), (0.8, 100.0)),
        key="entity_id",
    )
    mashups = builder.build(
        MashupRequest(attributes=wtp.attributes, key="entity_id")
    )
    best = next(
        m for m in mashups
        if set(m.plan.sources()) == {"seller_0", "seller_1"}
    )
    return builder, wtp, best


def test_row_allocation_uniform(sold_mashup):
    _b, _w, mashup = sold_mashup
    rows = row_allocation(mashup.relation, 100.0)
    assert len(rows) == len(mashup.relation)
    assert sum(rows) == pytest.approx(100.0)
    assert row_allocation(mashup.relation.limit(0), 10.0) == []


def test_provenance_shares_cover_both_sellers(sold_mashup):
    _b, _w, mashup = sold_mashup
    shares = provenance_shares(mashup.relation)
    assert set(shares) == {"seller_0", "seller_1"}
    # equi-join of two tables: equal joint responsibility
    assert shares["seller_0"] == pytest.approx(shares["seller_1"])


def test_provenance_shares_require_provenance(sold_mashup):
    _b, _w, mashup = sold_mashup
    with pytest.raises(ValuationError):
        provenance_shares(mashup.relation.without_provenance())


def test_shapley_shares_reflect_task_value(sold_mashup):
    builder, wtp, mashup = sold_mashup
    shares = shapley_shares(mashup, wtp, builder.metadata.relation)
    assert set(shares) == {"seller_0", "seller_1"}
    total = sum(shares.values())
    _s, full_price = wtp.evaluate(mashup.relation)
    assert total == pytest.approx(full_price, abs=1e-6)
    # seller_1 owns the informative features: it must earn at least as much
    assert shares["seller_1"] >= shares["seller_0"]


def test_engine_split_conserves(sold_mashup):
    builder, wtp, mashup = sold_mashup
    for method in ("provenance", "uniform", "shapley"):
        engine = RevenueAllocationEngine(method, commission=0.1)
        split = engine.split(
            mashup, 100.0, wtp=wtp, resolver=builder.metadata.relation
        )
        assert split.conserves()
        assert split.arbiter_fee == pytest.approx(10.0)
        assert split.sellers_total == pytest.approx(90.0)
        assert split.method == method


def test_engine_validates():
    with pytest.raises(ValuationError):
        RevenueAllocationEngine("oracle", 0.1)


def test_engine_shapley_needs_wtp(sold_mashup):
    _b, _w, mashup = sold_mashup
    engine = RevenueAllocationEngine("shapley", 0.1)
    with pytest.raises(ValuationError, match="needs the WTP"):
        engine.split(mashup, 100.0)
