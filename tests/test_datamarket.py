"""Tests for the unified ``DataMarket`` platform façade: typed lifecycle
operations, the structured error taxonomy, the graph-version plan cache,
and façade-vs-manually-wired-engines equivalence."""

import numpy as np
import pytest

from repro import DataMarket, external_market, internal_market
from repro.datagen import make_classification_world
from repro.errors import (
    DatasetNotFoundError,
    DatasetOwnershipError,
    DuplicateDatasetError,
    DuplicateParticipantError,
    InvalidRequestError,
    LicenseDowngradeError,
    MarketError,
    ReproDeprecationWarning,
    UnknownParticipantError,
)
from repro.integration import DoDEngine, MashupRequest
from repro.market import Arbiter, BuyerPlatform, License, LicenseKind
from repro.mashup import MashupBuilder
from repro.discovery import DiscoveryEngine, IndexBuilder, MetadataEngine
from repro.relation import Column, Relation
from repro.wtp import PriceCurve, QueryCompletenessTask, WTPFunction

N_KEYS = 40
ATTRS = ("alpha", "beta", "gamma", "delta", "epsilon")


def make_dataset(name: str, attrs, seed: int = 0) -> Relation:
    """A joinable dataset: shared entity_id domain + float attributes."""
    rng = np.random.default_rng(seed)
    cols = [Column("entity_id", "int", "entity")]
    cols += [Column(a, "float") for a in attrs]
    rows = [
        (k, *(float(v) for v in rng.normal(size=len(attrs))))
        for k in range(N_KEYS)
    ]
    return Relation(name, cols, rows)


def completeness_wtp(buyer: str, attrs, price: float = 50.0) -> WTPFunction:
    return WTPFunction(
        buyer=buyer,
        task=QueryCompletenessTask(
            wanted_keys=list(range(N_KEYS)),
            attributes=list(attrs),
            key="entity_id",
        ),
        curve=PriceCurve.single(0.3, price),
        key="entity_id",
    )


# ---------------------------------------------------------------------------
# typed lifecycle operations
# ---------------------------------------------------------------------------

def test_register_dataset_returns_typed_result():
    market = DataMarket(internal_market())
    r = market.register_dataset(
        make_dataset("ds_a", ["alpha"]), seller="s0", reserve_price=1.5
    )
    assert r.dataset == "ds_a"
    assert r.seller == "s0"
    assert r.version == 1
    assert r.rows == N_KEYS
    assert r.reserve_price == 1.5
    assert r.created is True
    assert r.as_of == market.graph_version


def test_register_duplicate_name_is_typed_error():
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    with pytest.raises(DuplicateDatasetError):
        market.register_dataset(make_dataset("ds_a", ["beta"]), seller="s0")


def test_update_dataset_bumps_version_and_flags_not_created():
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    r = market.update_dataset(
        make_dataset("ds_a", ["alpha"], seed=9), seller="s0"
    )
    assert r.created is False
    assert r.version == 2
    # unchanged content: no new snapshot
    r2 = market.update_dataset(
        make_dataset("ds_a", ["alpha"], seed=9), seller="s0"
    )
    assert r2.version == 2


def test_update_unknown_dataset_is_typed_error():
    market = DataMarket(internal_market())
    with pytest.raises(DatasetNotFoundError):
        market.update_dataset(make_dataset("ghost", ["alpha"]), seller="s0")


def test_update_by_other_seller_is_ownership_error():
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    with pytest.raises(DatasetOwnershipError):
        market.update_dataset(make_dataset("ds_a", ["alpha"]), seller="s1")


def test_retire_dataset_round_trip():
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    r = market.retire_dataset("ds_a")
    assert r.dataset == "ds_a"
    assert r.seller == "s0"
    assert "ds_a" not in market.datasets
    with pytest.raises(DatasetNotFoundError):
        market.retire_dataset("ds_a")
    # the name is free again, for any seller
    again = market.register_dataset(
        make_dataset("ds_a", ["beta"]), seller="s1"
    )
    assert again.created is True


def test_participant_errors_are_typed():
    market = DataMarket(internal_market())
    market.register_participant("b1")
    with pytest.raises(DuplicateParticipantError):
        market.register_participant("b1")
    with pytest.raises(InvalidRequestError):
        market.register_participant("b2", funding=-1.0)
    with pytest.raises(UnknownParticipantError):
        market.submit_wtp(completeness_wtp("nobody", ["alpha"]))
    with pytest.raises(InvalidRequestError):
        market.register_dataset(
            make_dataset("ds_a", ["alpha"]), seller="s0", reserve_price=-1.0
        )


def test_read_request_validation():
    market = DataMarket(internal_market())
    with pytest.raises(InvalidRequestError):
        market.search([])
    with pytest.raises(InvalidRequestError):
        market.plan([""])
    with pytest.raises(InvalidRequestError):
        market.plan(["alpha"], max_results=0)


def test_typed_errors_are_market_errors():
    # callers catching the old MarketError keep working
    for exc in (
        DuplicateDatasetError, DatasetNotFoundError, DatasetOwnershipError,
        DuplicateParticipantError, UnknownParticipantError,
        InvalidRequestError, LicenseDowngradeError,
    ):
        assert issubclass(exc, MarketError)


def test_search_and_plan_results_are_stamped():
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    market.register_dataset(make_dataset("ds_b", ["beta"]), seller="s1")
    s = market.search(["alpha", "beta"])
    assert s.datasets  # both datasets cover something
    assert s.as_of == market.graph_version
    p = market.plan(["alpha", "beta"], key="entity_id")
    assert p.best is not None
    assert set(p.best.relation.columns) == {"entity_id", "alpha", "beta"}
    assert p.as_of == market.graph_version
    assert p.plans and p.plans[0].sources()


def test_full_round_through_facade():
    world = make_classification_world(
        n_entities=200, feature_weights=(2.0, 1.5),
        dataset_features=((0,), (1,)), seed=7,
    )
    market = DataMarket(external_market())
    market.register_dataset(world.datasets[0], seller="s0")
    market.register_dataset(world.datasets[1], seller="s1")
    buyer = BuyerPlatform("b1")
    market.register_participant("b1", funding=500.0)
    market.attach_buyer_platform(buyer)
    receipt = market.submit_wtp(buyer.classification_wtp(
        labels=world.label_relation, features=["f0", "f1"],
        price_steps=[(0.6, 100.0)],
    ))
    assert receipt.buyer == "b1"
    assert receipt.queued == 1
    report = market.run_round()
    assert report.round_index == 1
    assert report.transactions == 1
    assert report.revenue == report.deliveries[0].price_paid
    assert report.as_of == market.graph_version
    assert buyer.latest is not None
    assert market.ledger.conservation_check()
    assert market.audit.verify()


# ---------------------------------------------------------------------------
# the graph-version plan cache
# ---------------------------------------------------------------------------

def test_plan_cache_hits_on_repeat_request():
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    market.register_dataset(make_dataset("ds_b", ["beta"]), seller="s1")
    p1 = market.plan(["alpha", "beta"], key="entity_id")
    p2 = market.plan(["alpha", "beta"], key="entity_id")
    assert p1.cached is False
    assert p2.cached is True
    assert p1.as_of == p2.as_of
    assert market.plan_cache_stats.hits == 1
    assert market.plan_cache_stats.misses == 1
    assert market.planner_stats.cache_hit is True
    # cached output is the same object graph's content
    assert [m.plan.describe() for m in p1.mashups] == [
        m.plan.describe() for m in p2.mashups
    ]
    assert [m.relation.rows for m in p1.mashups] == [
        m.relation.rows for m in p2.mashups
    ]


@pytest.mark.parametrize("delta", ["register", "update", "retire"])
def test_plan_cache_invalidated_by_any_delta(delta):
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    market.register_dataset(make_dataset("ds_b", ["beta"]), seller="s1")
    before = market.plan(["alpha", "beta"], key="entity_id")
    assert market.plan(["alpha", "beta"], key="entity_id").cached is True
    if delta == "register":
        market.register_dataset(make_dataset("ds_c", ["gamma"]), seller="s2")
    elif delta == "update":
        market.update_dataset(
            make_dataset("ds_b", ["beta"], seed=3), seller="s1"
        )
    else:
        market.retire_dataset("ds_b")
    after = market.plan(["alpha", "beta"], key="entity_id")
    assert after.cached is False
    assert after.as_of > before.as_of
    assert market.plan_cache_stats.invalidations >= 1


def test_plan_cache_results_identical_to_uncached_planner():
    cached = DataMarket(internal_market())
    uncached = DataMarket(internal_market(), plan_cache=False)
    for market in (cached, uncached):
        market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
        market.register_dataset(
            make_dataset("ds_b", ["beta", "gamma"]), seller="s1"
        )
    for _ in range(3):
        pc = cached.plan(["alpha", "beta", "gamma"], key="entity_id")
        pu = uncached.plan(["alpha", "beta", "gamma"], key="entity_id")
        assert [m.plan.describe() for m in pc.mashups] == [
            m.plan.describe() for m in pu.mashups
        ]
        assert [m.relation.rows for m in pc.mashups] == [
            m.relation.rows for m in pu.mashups
        ]
    assert cached.plan_cache_stats.hits == 2
    assert uncached.plan_cache_stats.requests == 0


def test_plan_with_examples_is_cached_by_content():
    """QBE payloads are content-hashed into the cache key: identical
    examples hit, different example rows miss (no false sharing)."""
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    examples = Relation(
        "examples",
        [Column("entity_id", "int", "entity"), Column("alpha", "float")],
        [(0, 0.0), (1, 1.0)],
    )
    market.plan(["alpha"], key="entity_id", examples=examples)
    market.plan(["alpha"], key="entity_id", examples=examples)
    assert market.plan_cache_stats.hits == 1
    assert market.plan_cache_stats.uncacheable == 0
    other = Relation(
        "examples",
        [Column("entity_id", "int", "entity"), Column("alpha", "float")],
        [(0, 5.0), (1, 6.0)],
    )
    market.plan(["alpha"], key="entity_id", examples=other)
    assert market.plan_cache_stats.hits == 1
    assert market.plan_cache_stats.misses == 2
    # examples-keyed entries must not serve the no-examples request either
    market.plan(["alpha"], key="entity_id")
    assert market.plan_cache_stats.hits == 1
    assert market.plan_cache_stats.misses == 3


def test_as_of_monotonicity_over_lifecycle():
    market = DataMarket(internal_market())
    stamps = []
    market.register_participant("b1", funding=100.0)
    for i, op in enumerate(
        ["register", "plan", "update", "search", "round", "retire", "plan"]
    ):
        if op == "register":
            stamps.append(
                market.register_dataset(
                    make_dataset("ds_a", ["alpha"]), seller="s0"
                ).as_of
            )
        elif op == "update":
            stamps.append(
                market.update_dataset(
                    make_dataset("ds_a", ["alpha"], seed=i), seller="s0"
                ).as_of
            )
        elif op == "search":
            stamps.append(market.search(["alpha"]).as_of)
        elif op == "plan":
            stamps.append(market.plan(["alpha"]).as_of)
        elif op == "round":
            market.submit_wtp(completeness_wtp("b1", ["alpha"]))
            stamps.append(market.run_round().as_of)
        else:
            stamps.append(market.retire_dataset("ds_a").as_of)
    assert stamps == sorted(stamps)


# ---------------------------------------------------------------------------
# façade vs. manually wired engines: lifecycle property test
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [11, 29, 47])
def test_facade_equals_manual_wiring_over_random_lifecycle(seed):
    """A random register/update/retire/search/plan/run_round stream through
    ``DataMarket`` (plan cache on) matches the same stream hand-wired
    through Arbiter + engines with the cache off."""
    rng = np.random.default_rng(seed)
    market = DataMarket(internal_market())
    manual = Arbiter(internal_market(), builder=MashupBuilder(plan_cache=False))
    live: dict[str, str] = {}  # dataset -> seller
    next_id = 0
    for b in ("b0", "b1"):
        market.register_participant(b, funding=1000.0)
        manual.register_participant(b, funding=1000.0)

    for step in range(25):
        op = rng.choice(
            ["register", "update", "retire", "search", "plan", "round"]
        )
        if op == "register" or (op in ("update", "retire") and not live):
            name = f"ds_{next_id}"
            seller = f"s{next_id % 3}"
            next_id += 1
            attrs = list(rng.choice(ATTRS, size=2, replace=False))
            ds = make_dataset(name, attrs, seed=100 + step)
            market.register_dataset(ds, seller=seller)
            manual.accept_dataset(ds, seller=seller)
            live[name] = seller
        elif op == "update":
            name = str(rng.choice(sorted(live)))
            attrs = list(rng.choice(ATTRS, size=2, replace=False))
            ds = make_dataset(name, attrs, seed=200 + step)
            market.update_dataset(ds, seller=live[name])
            manual.accept_dataset(ds, seller=live[name])
        elif op == "retire":
            name = str(rng.choice(sorted(live)))
            market.retire_dataset(name)
            manual.retire_dataset(name)
            del live[name]
        elif op == "search":
            attrs = list(rng.choice(ATTRS, size=2, replace=False))
            got = market.search(attrs)
            want = manual.builder.discovery.search_schema(attrs)
            assert [(h.dataset, h.score) for h in got.hits] == [
                (h.dataset, h.score) for h in want
            ]
        elif op == "plan":
            attrs = list(rng.choice(ATTRS, size=2, replace=False))
            got = market.plan(attrs, key="entity_id")
            want = manual.builder.build(
                MashupRequest(attributes=attrs, key="entity_id")
            )
            assert [m.plan.describe() for m in got.mashups] == [
                m.plan.describe() for m in want
            ]
            assert [m.relation.rows for m in got.mashups] == [
                m.relation.rows for m in want
            ]
        else:
            attrs = list(rng.choice(ATTRS, size=2, replace=False))
            for b in ("b0", "b1"):
                market.submit_wtp(completeness_wtp(b, attrs, price=20.0))
                manual.submit_wtp(completeness_wtp(b, attrs, price=20.0))
            got = market.run_round()
            want = manual.run_round()
            assert got.transactions == want.transactions
            assert got.revenue == pytest.approx(want.revenue)
            assert len(got.rejections) == len(want.rejections)
    # the façade actually exercised its cache along the way
    assert market.plan_cache_stats.requests > 0


# ---------------------------------------------------------------------------
# license continuity on dataset update (ROADMAP pre-existing bug)
# ---------------------------------------------------------------------------

def exclusive_sale_market():
    world = make_classification_world(
        n_entities=150, feature_weights=(2.0, 1.5),
        dataset_features=((0, 1),), seed=21,
    )
    market = DataMarket(external_market())
    market.register_dataset(
        world.datasets[0], seller="s0",
        license=License(LicenseKind.EXCLUSIVE, max_licensees=1),
    )
    return market, world


def buy(market, world, name, price=100.0):
    buyer = BuyerPlatform(name)
    if name not in market.ledger:
        market.register_participant(name, funding=500.0)
    market.attach_buyer_platform(buyer)
    market.submit_wtp(buyer.classification_wtp(
        labels=world.label_relation, features=["f0", "f1"],
        price_steps=[(0.6, price)],
    ))
    return market.run_round()


def test_exclusive_license_survives_seller_update():
    market, world = exclusive_sale_market()
    first = buy(market, world, "b1")
    assert first.transactions == 1
    ds = world.datasets[0].name
    assert market.licenses.licensees_of(ds) == ["b1"]
    # seller refreshes the dataset: the granted licensee must survive
    market.update_dataset(
        world.datasets[0], seller="s0",
        license=License(LicenseKind.EXCLUSIVE, max_licensees=1),
    )
    assert market.licenses.licensees_of(ds) == ["b1"]
    # the EXCLUSIVE slot stays occupied: a second buyer is blocked
    second = buy(market, world, "b2")
    assert second.transactions == 0
    assert any("exclusively licensed" in r.reason for r in second.rejections)
    # ... and the original holder still clears the license check
    third = buy(market, world, "b1")
    assert third.transactions == 1


def test_license_downgrades_rejected_on_update():
    world = make_classification_world(
        n_entities=150, feature_weights=(2.0, 1.5),
        dataset_features=((0, 1),), seed=22,
    )
    ds = world.datasets[0].name
    market = DataMarket(external_market())
    market.register_dataset(world.datasets[0], seller="s0")  # OPEN
    result = buy(market, world, "b1")
    assert result.transactions == 1
    # revoking resale rights from an existing holder is a downgrade
    with pytest.raises(LicenseDowngradeError):
        market.update_dataset(
            world.datasets[0], seller="s0",
            license=License(LicenseKind.NON_RESALE),
        )
    # shrinking exclusivity below the holder count likewise
    with pytest.raises(LicenseDowngradeError):
        market.update_dataset(
            world.datasets[0], seller="s0",
            license=License(LicenseKind.TRANSFER),
        )
    # holder list is intact and resale still works after the failed updates
    assert market.licenses.licensees_of(ds) == ["b1"]
    market.licenses.check_resale(ds, "b1")
    # with no licensees any license change is fine
    market.retire_dataset(ds)
    market.register_dataset(world.datasets[0], seller="s0")
    market.update_dataset(
        world.datasets[0], seller="s0",
        license=License(LicenseKind.NON_RESALE),
    )
    assert market.licenses.license_of(ds).kind is LicenseKind.NON_RESALE


def test_update_without_license_keeps_current_license():
    """An update that does not mention licensing must not weaken it:
    ``license=None`` means *keep*, not *reset to OPEN*."""
    market, world = exclusive_sale_market()
    ds = world.datasets[0].name
    first = buy(market, world, "b1")
    assert first.transactions == 1
    # plain refresh — the exact call shape simulator actors use
    market.update_dataset(world.datasets[0], seller="s0")
    assert market.licenses.license_of(ds).kind is LicenseKind.EXCLUSIVE
    assert market.licenses.licensees_of(ds) == ["b1"]
    # the slot is still taken: a second buyer stays blocked
    second = buy(market, world, "b2")
    assert second.transactions == 0
    assert any("exclusively licensed" in r.reason for r in second.rejections)


def test_empty_plan_after_hit_reports_cache_miss():
    """An unmatched request following a cache hit must not inherit the
    previous call's ``cache_hit`` stats."""
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    market.plan(["alpha"])
    assert market.plan(["alpha"]).cached is True
    empty = market.plan(["no_such_attribute_xyz"])
    assert len(empty) == 0
    assert empty.cached is False
    assert market.planner_stats.cache_hit is False


def test_cache_hits_serve_fresh_mutable_wrappers():
    """Cache hits share the immutable relations but hand out fresh
    Mashup/MashupPlan wrappers, so a caller mutating its copy cannot
    poison later requests."""
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    market.register_dataset(make_dataset("ds_b", ["beta"]), seller="s1")
    market.plan(["alpha", "beta"], key="entity_id")
    hit1 = market.plan(["alpha", "beta"], key="entity_id")
    assert hit1.cached
    hit1.best.matched.clear()
    hit1.best.plan.joins.clear()
    hit1.best.plan.output.clear()
    hit2 = market.plan(["alpha", "beta"], key="entity_id")
    assert hit2.cached
    assert hit2.best.matched
    assert hit2.best.plan.output
    assert hit2.best.relation is hit1.best.relation  # immutable, shared


def test_exclusive_cap_shrink_below_holders_rejected():
    from repro.market import LicenseRegistry

    reg = LicenseRegistry()
    reg.register(
        "ds", owner="s0",
        license=License(LicenseKind.EXCLUSIVE, max_licensees=2),
    )
    reg.record_sale("ds", "b1")
    reg.record_sale("ds", "b2")
    with pytest.raises(LicenseDowngradeError):
        reg.update(
            "ds", owner="s0",
            license=License(LicenseKind.EXCLUSIVE, max_licensees=1),
        )
    # same cap is fine, holders preserved
    reg.update(
        "ds", owner="s0",
        license=License(LicenseKind.EXCLUSIVE, max_licensees=2),
    )
    assert reg.licensees_of("ds") == ["b1", "b2"]


# ---------------------------------------------------------------------------
# deprecated manual wiring warns (and the test suite escalates it)
# ---------------------------------------------------------------------------

def test_add_datasets_is_deprecated():
    builder = MashupBuilder()
    with pytest.warns(ReproDeprecationWarning):
        builder.add_datasets([make_dataset("ds_a", ["alpha"])])


def test_implicit_dod_discovery_wiring_is_deprecated():
    engine = MetadataEngine(num_perm=16)
    index = IndexBuilder(engine)
    with pytest.warns(ReproDeprecationWarning):
        DoDEngine(engine, index)
    # explicit wiring stays silent
    DoDEngine(engine, index, DiscoveryEngine(engine, index))
