"""Tests for DP mechanisms, k-anonymity and the privacy accountant."""

import numpy as np
import pytest

from repro.errors import BudgetExhaustedError, PrivacyError
from repro.privacy import (
    PrivacyAccountant,
    anonymize,
    dp_count,
    dp_histogram,
    dp_mean,
    equivalence_classes,
    gaussian_mechanism,
    generalize_numeric,
    is_k_anonymous,
    laplace_mechanism,
    perturb_numeric_column,
    randomized_response,
    rr_unbias,
    suppress_columns,
)
from repro.relation import Relation


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_laplace_noise_scales_with_epsilon(rng):
    tight = [laplace_mechanism(0.0, 1.0, 10.0, rng) for _ in range(500)]
    loose = [laplace_mechanism(0.0, 1.0, 0.1, rng) for _ in range(500)]
    assert np.std(tight) < np.std(loose)


def test_laplace_validates(rng):
    with pytest.raises(PrivacyError):
        laplace_mechanism(0.0, 1.0, 0.0, rng)
    with pytest.raises(PrivacyError):
        laplace_mechanism(0.0, -1.0, 1.0, rng)


def test_gaussian_validates(rng):
    out = gaussian_mechanism(5.0, 1.0, 1.0, 1e-5, rng)
    assert isinstance(out, float)
    with pytest.raises(PrivacyError):
        gaussian_mechanism(0.0, 1.0, 1.0, 0.0, rng)
    with pytest.raises(PrivacyError):
        gaussian_mechanism(0.0, 1.0, -1.0, 0.5, rng)


def test_randomized_response_debias(rng):
    true_fraction = 0.3
    n = 4000
    answers = [
        randomized_response(i < n * true_fraction, 1.0, rng)
        for i in range(n)
    ]
    observed = sum(answers) / n
    estimate = rr_unbias(observed, 1.0)
    assert estimate == pytest.approx(true_fraction, abs=0.06)


def test_dp_count_and_mean(rng):
    rel = Relation("r", [("x", "float")], [(float(i),) for i in range(100)])
    assert dp_count(rel, 5.0, rng) == pytest.approx(100, abs=5)
    assert dp_mean(rel, "x", 5.0, rng, 0.0, 100.0) == pytest.approx(
        49.5, abs=5
    )
    with pytest.raises(PrivacyError):
        dp_mean(rel, "x", 1.0, rng, 10.0, 10.0)
    empty = Relation("e", [("x", "float")], [(None,)])
    with pytest.raises(PrivacyError):
        dp_mean(empty, "x", 1.0, rng, 0.0, 1.0)


def test_dp_histogram_nonnegative(rng):
    rel = Relation("r", [("c", "str")], [("a",)] * 50 + [("b",)] * 5)
    hist = dp_histogram(rel, "c", 1.0, rng)
    assert set(hist) == {"a", "b"}
    assert all(v >= 0 for v in hist.values())
    assert hist["a"] == pytest.approx(50, abs=10)


def test_perturb_numeric_column_noise_decreases_with_epsilon(rng):
    rel = Relation("r", [("x", "float")], [(0.0,)] * 400)
    noisy_lo = perturb_numeric_column(rel, "x", 0.2, rng)
    noisy_hi = perturb_numeric_column(rel, "x", 20.0, rng)
    err_lo = np.mean([abs(v) for v in noisy_lo.column("x")])
    err_hi = np.mean([abs(v) for v in noisy_hi.column("x")])
    assert err_hi < err_lo
    assert "eps=" in noisy_lo.name
    # nulls survive untouched
    with_null = Relation("r", [("x", "float")], [(None,), (1.0,)])
    out = perturb_numeric_column(with_null, "x", 1.0, rng)
    assert out.rows[0][0] is None


# -- k-anonymity -------------------------------------------------------------


@pytest.fixture
def medical():
    return Relation(
        "medical",
        [("name", "str"), ("age", "int"), ("zip", "int"), ("diagnosis", "str")],
        [
            ("ann", 34, 10001, "flu"),
            ("bob", 36, 10001, "flu"),
            ("cyd", 35, 10002, "cold"),
            ("dan", 61, 20001, "flu"),
            ("eve", 63, 20002, "cold"),
            ("fay", 62, 20001, "flu"),
        ],
    )


def test_equivalence_classes_and_check(medical):
    no_ids = medical.drop(["name"])
    classes = equivalence_classes(no_ids, ["age", "zip"])
    assert max(classes.values()) == 1
    assert not is_k_anonymous(no_ids, ["age", "zip"], 2)
    assert is_k_anonymous(no_ids, [], 6) if len(no_ids) else True
    with pytest.raises(PrivacyError):
        is_k_anonymous(no_ids, ["age"], 0)


def test_generalize_numeric(medical):
    out = generalize_numeric(medical, "age", 10.0)
    assert out.column("age")[0] == "[30, 40)"
    with pytest.raises(PrivacyError):
        generalize_numeric(medical, "age", 0.0)


def test_suppress_columns(medical):
    out = suppress_columns(medical, ["name"])
    assert "name" not in out.schema


def test_anonymize_achieves_k(medical):
    out = anonymize(
        medical, quasi_identifiers=["age", "zip"], k=2, suppress=["name"]
    )
    assert "name" not in out.schema
    assert is_k_anonymous(out, ["age", "zip"], 2)
    assert len(out) >= 2  # useful data survives


def test_anonymize_impossible_k(medical):
    with pytest.raises(PrivacyError):
        anonymize(medical, ["age"], k=100, suppress=["name"])
    with pytest.raises(PrivacyError):
        anonymize(medical, ["age"], k=0)


# -- accountant -----------------------------------------------------------------


def test_accountant_lifecycle():
    acc = PrivacyAccountant()
    acc.register("ds", 1.0)
    assert "ds" in acc
    assert acc.can_spend("ds", 0.6)
    acc.spend("ds", 0.6, purpose="histogram")
    assert acc.remaining("ds") == pytest.approx(0.4)
    assert acc.spent("ds") == pytest.approx(0.6)
    assert acc.history("ds") == [("histogram", 0.6)]
    with pytest.raises(BudgetExhaustedError):
        acc.spend("ds", 0.5)
    acc.spend("ds", 0.4)
    assert acc.remaining("ds") == pytest.approx(0.0)


def test_accountant_validates():
    acc = PrivacyAccountant()
    with pytest.raises(PrivacyError):
        acc.register("ds", 0.0)
    acc.register("ds", 1.0)
    with pytest.raises(PrivacyError):
        acc.register("ds", 1.0)
    with pytest.raises(PrivacyError):
        acc.spend("ds", -0.1)
    with pytest.raises(PrivacyError):
        acc.remaining("ghost")
