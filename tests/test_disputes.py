"""Tests for the dispute desk (Section 4.4)."""

import pytest

from repro.datagen import make_classification_world
from repro.market import (
    Arbiter,
    BuyerPlatform,
    DisputeDesk,
    DisputeError,
    DisputeKind,
    DisputeStatus,
    SellerPlatform,
    exclusive_auction_market,
)


@pytest.fixture
def settled_market():
    """A market with one completed transaction and a dispute desk."""
    world = make_classification_world(
        n_entities=200, feature_weights=(2.0, 1.5),
        dataset_features=((0, 1),), seed=33,
    )
    arbiter = Arbiter(exclusive_auction_market(k=1, reserve=20.0))
    seller = SellerPlatform("acme")
    seller.package(world.datasets[0])
    seller.share_all(arbiter)
    buyer = BuyerPlatform("b1")
    arbiter.register_participant("b1", funding=200.0)
    buyer.submit(arbiter, buyer.classification_wtp(
        labels=world.label_relation, features=["f0", "f1"],
        price_steps=[(0.7, 100.0)],
    ))
    result = arbiter.run_round()
    assert result.transactions == 1
    # the arbiter needs operating capital to honour refunds beyond its
    # accumulated commission
    arbiter.ledger.mint("arbiter", 100.0, memo="operating reserve")
    desk = DisputeDesk(arbiter.ledger, arbiter.audit, arbiter.lineage)
    return arbiter, desk, result.deliveries[0]


def test_not_delivered_dismissed_when_record_exists(settled_market):
    arbiter, desk, delivery = settled_market
    dispute = desk.file(
        "b1", DisputeKind.NOT_DELIVERED, delivery.transaction_id, 100.0
    )
    desk.resolve(dispute.dispute_id)
    assert dispute.status is DisputeStatus.DISMISSED
    assert "on record" in dispute.resolution
    assert dispute.refund == 0.0


def test_not_delivered_upheld_for_ghost_transaction(settled_market):
    arbiter, desk, _delivery = settled_market
    before = arbiter.ledger.balance("b1")
    dispute = desk.file("b1", DisputeKind.NOT_DELIVERED, 999, 15.0)
    desk.resolve(dispute.dispute_id)
    assert dispute.status is DisputeStatus.UPHELD
    assert arbiter.ledger.balance("b1") == pytest.approx(before + 15.0)
    assert arbiter.audit.verify()  # resolution is itself audited


def test_overcharged_adjudicated_from_audit(settled_market):
    arbiter, desk, delivery = settled_market
    # claim more than recorded -> refund of the difference
    dispute = desk.file(
        "b1", DisputeKind.OVERCHARGED, delivery.transaction_id,
        delivery.price_paid + 5.0,
    )
    desk.resolve(dispute.dispute_id)
    assert dispute.status is DisputeStatus.UPHELD
    assert dispute.refund == pytest.approx(5.0)
    # claim equal to the record -> dismissed
    dispute2 = desk.file(
        "b1", DisputeKind.OVERCHARGED, delivery.transaction_id,
        delivery.price_paid,
    )
    desk.resolve(dispute2.dispute_id)
    assert dispute2.status is DisputeStatus.DISMISSED


def test_unpaid_share_dismissed_when_ledger_shows_payment(settled_market):
    arbiter, desk, delivery = settled_market
    dispute = desk.file(
        "acme", DisputeKind.UNPAID_SHARE, delivery.transaction_id,
        delivery.split.sellers_total,
    )
    desk.resolve(dispute.dispute_id)
    assert dispute.status is DisputeStatus.DISMISSED


def test_dispute_validation(settled_market):
    _arbiter, desk, delivery = settled_market
    with pytest.raises(DisputeError, match="non-negative"):
        desk.file("b1", DisputeKind.OVERCHARGED, 1, -5.0)
    with pytest.raises(DisputeError, match="unknown participant"):
        desk.file("stranger", DisputeKind.OVERCHARGED, 1, 5.0)
    with pytest.raises(DisputeError, match="unknown dispute"):
        desk.resolve(42)
    d = desk.file("b1", DisputeKind.NOT_DELIVERED, delivery.transaction_id,
                  1.0)
    desk.resolve(d.dispute_id)
    with pytest.raises(DisputeError, match="already"):
        desk.resolve(d.dispute_id)
    assert desk.open_disputes() == []
