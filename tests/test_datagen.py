"""Tests for the synthetic corpus and classification generators."""

import pytest

from repro.datagen import (
    CorpusSpec,
    conflicting_sources,
    generate_corpus,
    intro_scenario,
    make_classification_world,
    time_series,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusSpec(n_entities=100, n_datasets=5, seed=3))


def test_corpus_shape(corpus):
    assert len(corpus.datasets) == 5
    assert len(corpus.wide) == 100
    for ds in corpus.datasets:
        assert corpus.key_names[ds.name] in ds.schema
        assert len(ds) >= 2


def test_corpus_is_deterministic():
    a = generate_corpus(CorpusSpec(n_entities=50, seed=11))
    b = generate_corpus(CorpusSpec(n_entities=50, seed=11))
    for da, db in zip(a.datasets, b.datasets):
        assert da == db
    c = generate_corpus(CorpusSpec(n_entities=50, seed=12))
    assert any(da != dc for da, dc in zip(a.datasets, c.datasets))


def test_corpus_true_joins_actually_join(corpus):
    for ds_a, col_a, ds_b, col_b in corpus.true_joins:
        a, b = corpus.dataset(ds_a), corpus.dataset(ds_b)
        joined = a.join(b, on=[(col_a, col_b)])
        # both datasets sample ~70% of the same universe: expect overlap
        assert len(joined) > 0


def test_corpus_affine_transforms_recorded():
    spec = CorpusSpec(
        n_entities=80, n_datasets=8, affine_probability=0.9, seed=5
    )
    corpus = generate_corpus(spec)
    affines = [t for t in corpus.transforms if t.kind == "affine"]
    assert affines, "expected at least one affine transform at p=0.9"
    for t in affines:
        ds = corpus.dataset(t.dataset)
        a, b = t.params
        key = corpus.key_names[t.dataset]
        base_pos = corpus.wide.schema.position(t.base_column)
        wide_by_id = {row[0]: row[base_pos] for row in corpus.wide.rows}
        col_pos = ds.schema.position(t.column)
        key_pos = ds.schema.position(key)
        for row in ds.rows[:10]:
            assert row[col_pos] == pytest.approx(
                a * wide_by_id[row[key_pos]] + b
            )


def test_corpus_code_transforms_have_mapping():
    spec = CorpusSpec(
        n_entities=60, n_datasets=8, code_probability=0.9,
        affine_probability=0.0, seed=9,
    )
    corpus = generate_corpus(spec)
    codes = [t for t in corpus.transforms if t.kind == "code"]
    assert codes
    for t in codes:
        assert t.mapping
        ds = corpus.dataset(t.dataset)
        values = set(ds.column(t.column))
        assert values <= set(t.mapping.keys())


def test_time_series():
    ts = time_series("temps", 10, 60, lambda t: t / 10.0)
    assert len(ts) == 10
    assert ts.rows[3] == (180, 18.0)
    noisy = time_series("n", 10, 60, lambda t: 0.0, noise=1.0, seed=1)
    assert any(v != 0.0 for v in noisy.column("value"))


def test_conflicting_sources_accuracy():
    truth, sources = conflicting_sources(
        3, 300, accuracies=[0.95, 0.6, 0.3], seed=2
    )
    truth_map = dict(truth.rows)
    measured = []
    for src in sources:
        right = sum(1 for e, c in src.rows if truth_map[e] == c)
        measured.append(right / len(src))
    assert measured[0] > measured[1] > measured[2]
    assert measured[0] == pytest.approx(0.95, abs=0.05)


def test_conflicting_sources_validates():
    with pytest.raises(ValueError):
        conflicting_sources(2, 10, accuracies=[0.5])


def test_classification_world_features_split():
    world = make_classification_world(
        n_entities=100, dataset_features=((0, 1), (2, 3, 4))
    )
    assert world.datasets[0].columns == ("entity_id", "f0", "f1")
    assert world.datasets[1].columns == ("entity_id", "f2", "f3", "f4")
    assert set(world.label_relation.columns) == {"entity_id", "label"}
    labels = set(world.label_relation.column("label"))
    assert labels <= {0, 1} and len(labels) == 2


def test_intro_scenario_shapes():
    sc = intro_scenario(seed=1, n_entities=120)
    assert sc["s1"].columns == ("entity_id", "a", "b", "c")
    assert sc["s2"].columns == ("entity_id", "b_prime", "fd")
    kind, a, b, col, base = sc["transform"]
    assert kind == "affine" and a == 1.8 and b == 32.0
    # fd really is an affine transform of the hidden d
    full = sc["world"].full
    d_pos = full.schema.position(base)
    fd_by_id = {r[0]: r[2] for r in sc["s2"].rows}
    for row in full.rows[:20]:
        assert fd_by_id[row[0]] == pytest.approx(1.8 * row[d_pos] + 32.0)
