"""Unit tests for CSV I/O."""

import pytest

from repro.errors import SchemaError
from repro.relation import Relation, read_csv, read_csv_dir, read_csv_text, write_csv


def test_read_csv_text_types():
    r = read_csv_text("t", "a,b,c,d\n1,2.5,hello,true\n2,3.5,world,false\n")
    assert r.schema["a"].dtype == "int"
    assert r.schema["b"].dtype == "float"
    assert r.schema["c"].dtype == "str"
    assert r.schema["d"].dtype == "bool"
    assert r.rows[0] == (1, 2.5, "hello", True)


def test_read_csv_text_nulls_and_mixed():
    r = read_csv_text("t", "a,b\n1,\n,x\n")
    assert r.rows[0] == (1, None)
    assert r.rows[1] == (None, "x")


def test_read_csv_text_int_promoted_in_float_column():
    r = read_csv_text("t", "a\n1\n2.5\n")
    assert r.schema["a"].dtype == "float"
    assert r.rows[0] == (1.0,)


def test_read_csv_text_empty_raises():
    with pytest.raises(SchemaError):
        read_csv_text("t", "")


def test_read_csv_text_ragged_raises():
    with pytest.raises(SchemaError):
        read_csv_text("t", "a,b\n1\n")


def test_roundtrip_file(tmp_path):
    rel = Relation(
        "orig", [("a", "int"), ("b", "str")], [(1, "x"), (None, "y")]
    )
    path = tmp_path / "orig.csv"
    write_csv(rel, str(path))
    back = read_csv(str(path))
    assert back.name == "orig"
    assert back == rel


def test_read_csv_dir(tmp_path):
    (tmp_path / "one.csv").write_text("a\n1\n")
    (tmp_path / "two.csv").write_text("b\nx\n")
    (tmp_path / "ignore.txt").write_text("not a csv")
    rels = read_csv_dir(str(tmp_path))
    assert [r.name for r in rels] == ["one", "two"]
