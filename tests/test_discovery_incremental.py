"""Incremental discovery pipeline: delta maintenance vs. the rebuild oracle.

The index builder's incremental mode (LSH-bucketed neighbour re-scoring on
typed metadata deltas) must be observationally identical to the O(C²) full
rebuild it replaces: property-style sequences of register/update/remove are
replayed against both modes and every externally visible query — ranked
candidates, the join graph, join paths — is compared at each step.
"""

import random

import pytest

from repro.datagen import make_classification_world
from repro.discovery import (
    DiscoveryEngine,
    IndexBuilder,
    MetadataEngine,
)
from repro.errors import DiscoveryError, MarketError, SimulationError
from repro.market import internal_market
from repro.market.arbiter import Arbiter
from repro.relation import Column, Relation
from repro.simulator import simulate_market_deployment, uniform_values
from repro.sketches import LSHIndex, MinHash

NAMES = ["ds_a", "ds_b", "ds_c", "ds_d", "ds_e", "ds_f"]


def make_relation(name: str, rng: random.Random) -> Relation:
    """Random dataset exercising all three candidate signals: overlapping
    int keys (overlap), optional semantic tags (semantic), and a shared
    ``code`` column name with partial value overlap (name)."""
    n = rng.randrange(15, 35)
    start = rng.choice([0, 5, 10, 20, 40])
    tag = rng.choice(["entity", None])
    columns = [
        Column("entity_id", "int", tag),
        Column("code", "str"),
        Column("payload", "float"),
    ]
    rows = [
        (start + i, f"c{(start + i) % 25}", round(rng.random() * 100, 3))
        for i in range(n)
    ]
    return Relation(name, columns, rows)


def canonical_candidates(index: IndexBuilder) -> list[tuple]:
    return [
        (c.left_dataset, c.left_column, c.right_dataset, c.right_column,
         c.score, c.evidence)
        for c in index.join_candidates()
    ]


def canonical_graph(index: IndexBuilder) -> tuple[dict, set]:
    g = index.graph
    nodes = {n: g.nodes[n].get("n_rows") for n in g.nodes}
    # the multigraph carries every qualifying predicate as a parallel edge:
    # canonicalize the full edge *set*, directions included
    edges = {
        (tuple(sorted((u, v))), d["left_dataset"], d["pairs"], d["score"],
         d["evidence"], d["pk_side"])
        for u, v, d in g.edges(data=True)
    }
    return nodes, edges


def path_cost(path) -> float:
    return sum(1.0 - step.score for step in path)


def assert_equivalent(inc: IndexBuilder, oracle: IndexBuilder) -> None:
    assert canonical_candidates(inc) == canonical_candidates(oracle)
    assert canonical_graph(inc) == canonical_graph(oracle)
    datasets = sorted(inc.graph.nodes)
    for i, source in enumerate(datasets):
        for target in datasets[i + 1 :]:
            try:
                cost = path_cost(oracle.join_path(source, target))
            except DiscoveryError:
                with pytest.raises(DiscoveryError):
                    inc.join_path(source, target)
                continue
            # identical graphs guarantee identical optimal cost; the node
            # sequence itself may differ only between equally cheap ties
            assert path_cost(inc.join_path(source, target)) == pytest.approx(
                cost, abs=1e-12
            )


@pytest.mark.parametrize("seed", [11, 29, 47])
def test_incremental_matches_full_rebuild_over_random_lifecycles(seed):
    rng = random.Random(seed)
    eng = MetadataEngine(num_perm=16)
    inc = IndexBuilder(eng)  # incremental (the default)
    oracle = IndexBuilder(eng, incremental=False)
    live: set[str] = set()
    for _ in range(30):
        roll = rng.random()
        if not live or roll < 0.45:
            name = rng.choice(NAMES)
            eng.register(make_relation(name, rng))
            live.add(name)
        elif roll < 0.75:
            name = rng.choice(sorted(live))
            eng.register(make_relation(name, rng))
        else:
            name = rng.choice(sorted(live))
            eng.remove(name)
            live.discard(name)
        assert_equivalent(inc, oracle)


def test_candidate_order_breaks_ties_on_column_names():
    # two column pairs of the same dataset pair with identical scores: the
    # ordering must be deterministic via the column-name tiebreak
    rows = [(i, i) for i in range(20)]
    left = Relation("left", [Column("k1", "int"), Column("k2", "int")], rows)
    right = Relation("right", [Column("k1", "int"), Column("k2", "int")], rows)
    eng = MetadataEngine(num_perm=16)
    inc = IndexBuilder(eng)
    oracle = IndexBuilder(eng, incremental=False)
    eng.register_batch([left, right])
    cands = canonical_candidates(inc)
    assert cands == canonical_candidates(oracle)
    equal_scores = [c for c in cands if c[4] == cands[0][4]]
    assert equal_scores == sorted(equal_scores)


# -- multigraph maintenance: multi-edges, composites, direction --------------


def two_key_relation(name: str, n: int, start: int = 0) -> Relation:
    """Two key-like columns shared across datasets: yields parallel edges
    plus a composite-key predicate between any pair."""
    frac = (sum(map(ord, name)) % 97) / 100  # payloads never overlap
    return Relation(
        name,
        [Column("order_key", "int"), Column("batch_code", "str"),
         Column(f"{name}_payload", "float")],
        [(start + i, f"b{start + i}", -(start + i) - frac)
         for i in range(n)],
    )


def test_multigraph_maintenance_matches_refresh_rebuild():
    """After update/remove deltas the incrementally patched multigraph —
    parallel edge sets, composite predicates, directions — must equal a
    from-scratch ``refresh()`` rebuild."""
    eng = MetadataEngine(num_perm=64)
    index = IndexBuilder(eng)
    eng.register(two_key_relation("sales", 30))
    eng.register(two_key_relation("returns", 30))
    eng.register(two_key_relation("audits", 24))  # subset: directed edges
    eng.register(two_key_relation("sales", 32))  # update delta
    eng.remove("returns")
    eng.register(two_key_relation("returns", 28, start=2))  # re-arrival
    incremental_view = (canonical_candidates(index), canonical_graph(index))
    index.refresh()  # the O(C²) from-scratch oracle build
    assert (canonical_candidates(index), canonical_graph(index)) == (
        incremental_view
    )
    # parallel edges: both single-column predicates and the composite
    evidences = {
        d["evidence"] for _u, _v, d in index.graph.edges(data=True)
    }
    assert "composite" in evidences and "overlap" in evidences
    composite = [
        d for _u, _v, d in index.graph.edges(data=True)
        if d["evidence"] == "composite"
    ]
    assert all(len(d["pairs"]) == 2 for d in composite)


def test_pk_fk_direction_inferred_and_maintained():
    eng = MetadataEngine(num_perm=256)
    index = IndexBuilder(eng)
    oracle = IndexBuilder(eng, incremental=False)
    customers = Relation(
        "customers",
        [Column("customer_id", "int"), Column("city", "str")],
        [(i, "oslo" if i % 2 else "rome") for i in range(100)],
    )
    orders = Relation(
        "orders",
        [Column("customer_id", "int"), Column("amount", "float")],
        [(i, float(i)) for i in range(80)],
    )
    eng.register_batch([customers, orders])
    (cand,) = index.join_candidates(min_score=0.5)
    assert cand.pk_side == "customers"  # orders.customer_id ⊆ customers'
    (step,) = index.join_path("orders", "customers")
    assert step.pk_side == "customers"
    assert_equivalent(index, oracle)
    # updated orders now carries the full key range: containment symmetric
    eng.register(Relation(
        "orders",
        [Column("customer_id", "int"), Column("amount", "float")],
        [(i, float(i)) for i in range(100)],
    ))
    (cand,) = index.join_candidates(min_score=0.5)
    assert cand.pk_side is None
    assert_equivalent(index, oracle)


def test_components_api_tracks_deltas():
    eng = MetadataEngine(num_perm=64)
    index = IndexBuilder(eng)
    eng.register(two_key_relation("a1", 25))
    eng.register(two_key_relation("a2", 25))
    eng.register(two_key_relation("b1", 25, start=9000))
    assert index.components() == (
        frozenset({"a1", "a2"}), frozenset({"b1"}),
    )
    assert index.reachable(["a1", "a2"])
    assert not index.reachable(["a1", "b1"])
    assert not index.reachable(["a1", "ghost"])
    assert index.component_of("ghost") is None
    # a bridge dataset spanning both key ranges merges the components
    bridge = Relation(
        "bridge",
        [Column("order_key", "int"), Column("batch_code", "str")],
        [(k, f"b{k}") for k in list(range(12)) + list(range(9000, 9012))],
    )
    eng.register(bridge)
    assert len(index.components()) == 1
    assert index.reachable(["a1", "b1"])
    eng.remove("bridge")
    assert index.components() == (
        frozenset({"a1", "a2"}), frozenset({"b1"}),
    )


# -- metadata deltas, removal, unsubscribe -----------------------------------


def sample_corpus():
    rng = random.Random(0)
    return [make_relation(name, rng) for name in NAMES[:3]]


def test_remove_prunes_engine_and_index():
    eng = MetadataEngine(num_perm=16)
    index = IndexBuilder(eng)
    a, b, c = sample_corpus()
    eng.register_batch([a, b, c])
    assert index.join_candidates(dataset=b.name)
    eng.remove(b.name)
    assert b.name not in eng
    assert b.name not in eng.datasets
    assert b.name not in index.graph
    assert not index.join_candidates(dataset=b.name)
    assert all(
        b.name not in (cand.left_dataset, cand.right_dataset)
        for cand in index.join_candidates()
    )
    with pytest.raises(DiscoveryError):
        eng.remove(b.name)
    with pytest.raises(DiscoveryError):
        eng.relation(b.name)


def test_remove_emits_typed_delta_and_updates_freshness():
    eng = MetadataEngine(num_perm=16)
    events = []
    eng.subscribe(events.append)
    a, b, _ = sample_corpus()
    eng.register(a)
    eng.register(b)
    assert [e.kind for e in events] == ["added", "added"]
    assert eng.newest_logical_time == 2
    delta = eng.remove(b.name)
    assert delta.kind == "removed" and delta.previous.dataset == b.name
    assert eng.newest_logical_time == 1
    eng.remove(a.name)
    assert eng.newest_logical_time == 0


def test_update_delta_carries_previous_snapshot():
    eng = MetadataEngine(num_perm=16)
    events = []
    eng.subscribe(events.append)
    rng = random.Random(5)
    eng.register(make_relation("ds_a", rng))
    eng.register(make_relation("ds_a", rng))
    assert events[1].kind == "updated"
    assert events[1].previous.version == 1
    assert events[1].snapshot.version == 2


def test_unsubscribe_detaches_listener():
    eng = MetadataEngine(num_perm=16)
    events = []
    token = eng.subscribe(events.append)
    rng = random.Random(1)
    eng.register(make_relation("ds_a", rng))
    eng.unsubscribe(token)
    eng.register(make_relation("ds_b", rng))
    assert len(events) == 1
    with pytest.raises(DiscoveryError):
        eng.unsubscribe(token)


def test_index_detach_freezes_index():
    eng = MetadataEngine(num_perm=16)
    index = IndexBuilder(eng)
    a, b, c = sample_corpus()
    eng.register_batch([a, b])
    before = canonical_candidates(index)
    index.detach()
    index.detach()  # idempotent
    eng.register(c)
    assert canonical_candidates(index) == before


def test_discovery_match_cache_invalidated_by_deltas():
    eng = MetadataEngine(num_perm=16)
    index = IndexBuilder(eng)
    discovery = DiscoveryEngine(eng, index)
    rng = random.Random(2)
    eng.register(make_relation("ds_a", rng))
    first = discovery.match_attribute("payload")
    assert {m.dataset for m in first} == {"ds_a"}
    # cached result must not leak mutations back into the cache
    first.clear()
    assert {m.dataset for m in discovery.match_attribute("payload")} == {"ds_a"}
    eng.register(make_relation("ds_b", rng))
    assert {m.dataset for m in discovery.match_attribute("payload")} == {
        "ds_a", "ds_b",
    }
    discovery.detach()
    discovery.detach()  # idempotent


# -- profiler: per-column reuse across versions ------------------------------


def test_profile_reuses_unchanged_columns_across_versions():
    rows = [(i, f"c{i}", float(i)) for i in range(25)]
    columns = [
        Column("entity_id", "int"), Column("code", "str"),
        Column("payload", "float"),
    ]
    eng = MetadataEngine(num_perm=16)
    snap1 = eng.register(Relation("ds", columns, rows))
    # only payload changes; entity_id and code keep their values
    changed = [(i, f"c{i}", float(i) + 0.5) for i in range(25)]
    snap2 = eng.register(Relation("ds", columns, changed))
    assert snap2.version == 2
    assert snap2.profile.column("entity_id") is snap1.profile.column("entity_id")
    assert snap2.profile.column("code") is snap1.profile.column("code")
    assert snap2.profile.column("payload") is not snap1.profile.column("payload")


# -- LSH index maintenance ---------------------------------------------------


def test_lsh_remove_and_readd():
    index = LSHIndex(num_perm=16, bands=16)
    sig_a = MinHash.of(range(50), num_perm=16)
    sig_b = MinHash.of(range(25, 75), num_perm=16)
    index.add("a", sig_a)
    index.add("b", sig_b)
    assert "b" in {k for k in index.candidates(sig_a)}
    index.remove("b")
    assert "b" not in index
    assert index.candidates(sig_a) == {"a"}
    with pytest.raises(KeyError):
        index.remove("b")
    index.add("b", sig_b)  # re-adding after removal is legal
    assert len(index) == 2
    assert index.query(sig_b)[0][0] == "b"


# -- market layers: retirement mid-deployment --------------------------------


def world_datasets():
    world = make_classification_world(
        n_entities=60, feature_weights=(1.0, 1.0),
        dataset_features=((0,), (1,)), seed=61,
    )
    return world.datasets


def test_arbiter_retire_dataset():
    arbiter = Arbiter(internal_market())
    a, b = world_datasets()
    arbiter.accept_dataset(a, seller="s0")
    arbiter.accept_dataset(b, seller="s1")
    arbiter.retire_dataset(b.name)
    assert b.name not in arbiter.builder.datasets
    assert a.name in arbiter.builder.datasets
    assert b.name not in arbiter.licenses
    with pytest.raises(MarketError):
        arbiter.retire_dataset("ghost")


def test_arbiter_reaccept_after_retire_and_update():
    arbiter = Arbiter(internal_market())
    a, b = world_datasets()
    arbiter.accept_dataset(a, seller="s0")
    # same seller re-accepting is an update, not an error
    arbiter.accept_dataset(a, seller="s0", reserve_price=2.0)
    assert arbiter.builder.metadata.snapshot(a.name).version == 1  # unchanged
    # another seller may not hijack the name
    with pytest.raises(MarketError):
        arbiter.accept_dataset(a, seller="s1")
    assert a.name in arbiter.builder.datasets  # rejected before state moved
    # after retirement the name is free again
    arbiter.retire_dataset(a.name)
    arbiter.accept_dataset(a.renamed(a.name), seller="s1")
    assert arbiter.licenses.owner_of(a.name) == "s1"
    arbiter.accept_dataset(b, seller="s0")
    assert set(arbiter.builder.datasets) == {a.name, b.name}


def test_fullstack_arrivals_and_departures():
    datasets = world_datasets()
    late = datasets[1].renamed("late_arrival")
    result = simulate_market_deployment(
        internal_market(),
        datasets,
        wanted_attributes=["f0", "f1"],
        value_sampler=uniform_values(10, 100),
        strategy_mix={"truthful": 1.0},
        n_buyers=4,
        n_rounds=4,
        seed=3,
        departures={2: [datasets[1].name]},
        arrivals={2: [late]},
    )
    assert result.rounds == 4
    # the late arrival's seller joined the balance sheet
    assert set(result.seller_balances) == {"seller_0", "seller_1", "seller_2"}
    assert result.transactions > 0


def test_fullstack_rejects_bad_schedules():
    datasets = world_datasets()

    def run(**schedule):
        return simulate_market_deployment(
            internal_market(),
            datasets,
            wanted_attributes=["f0"],
            value_sampler=uniform_values(10, 100),
            strategy_mix={"truthful": 1.0},
            n_buyers=2,
            n_rounds=6,
            **schedule,
        )

    late = datasets[1].renamed("late_arrival")
    with pytest.raises(SimulationError):
        run(departures={1: ["ghost"]})
    with pytest.raises(SimulationError):  # departs before it arrives
        run(arrivals={4: [late]}, departures={2: ["late_arrival"]})
    with pytest.raises(SimulationError):  # same round: departures run first
        run(arrivals={2: [late]}, departures={2: ["late_arrival"]})
    with pytest.raises(SimulationError):  # name clash with a live dataset
        run(arrivals={1: [datasets[0].renamed(datasets[0].name)]})
    # depart-then-rearrive with the same name is a legal lifecycle
    result = run(
        departures={1: [datasets[1].name]},
        arrivals={3: [datasets[1].renamed(datasets[1].name)]},
    )
    assert result.rounds == 6
