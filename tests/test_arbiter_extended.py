"""Extended arbiter coverage: exclusivity tax, recommendations, multi-round
accumulation, context-gated sales, and the internal market at scale."""

import pytest

from repro.datagen import make_classification_world
from repro.market import (
    Arbiter,
    BuyerPlatform,
    ContextualIntegrityPolicy,
    License,
    LicenseKind,
    SellerPlatform,
    exclusive_auction_market,
    internal_market,
)


@pytest.fixture
def world():
    return make_classification_world(
        n_entities=200,
        feature_weights=(2.0, 1.5),
        dataset_features=((0, 1),),
        seed=55,
    )


def make_buyer(arbiter, name, world, price=100.0, threshold=0.7,
               funding=500.0):
    buyer = BuyerPlatform(name)
    arbiter.register_participant(name, funding=funding)
    arbiter.attach_buyer_platform(buyer)
    buyer.submit(arbiter, buyer.classification_wtp(
        labels=world.label_relation, features=["f0", "f1"],
        price_steps=[(threshold, price)],
    ))
    return buyer


def test_exclusivity_tax_raises_the_paid_price(world):
    """Section 4.4: artificial scarcity costs the buyer a tax."""
    taxed_license = License(LicenseKind.EXCLUSIVE, exclusivity_tax_rate=0.5)
    arbiter = Arbiter(exclusive_auction_market(k=1, reserve=20.0))
    arbiter.accept_dataset(
        world.datasets[0], seller="s1", license=taxed_license
    )
    make_buyer(arbiter, "b1", world)
    result = arbiter.run_round()
    assert result.transactions == 1
    # Vickrey reserve 20, tax 50% -> the buyer pays 30
    assert result.deliveries[0].price_paid == pytest.approx(30.0)
    assert arbiter.ledger.conservation_check()


def test_context_gated_sale(world):
    policy = ContextualIntegrityPolicy.of("research")
    arbiter = Arbiter(exclusive_auction_market(k=1, reserve=1.0))
    arbiter.accept_dataset(world.datasets[0], seller="s1", policy=policy)
    make_buyer(arbiter, "b1", world)
    blocked = arbiter.run_round(context="advertising")
    assert blocked.transactions == 0
    assert any("contextual" in r.reason for r in blocked.rejections)
    make_buyer(arbiter, "b2", world)
    allowed = arbiter.run_round(context="research")
    assert allowed.transactions == 1


def test_recommendations_emerge_from_purchases(world):
    extra = make_classification_world(
        n_entities=200, feature_weights=(1.0, 1.0),
        dataset_features=((0,), (1,)), seed=56,
    )
    arbiter = Arbiter(internal_market())
    arbiter.accept_dataset(world.datasets[0], seller="s1")
    arbiter.accept_dataset(
        extra.datasets[0].renamed("bonus_ds").with_provenance_root("bonus_ds"),
        seller="s2",
    )
    # b1 buys both goods; b2 buys only the first
    b1 = make_buyer(arbiter, "b1", world, price=10.0)
    arbiter.run_round()
    wtp_bonus = b1.completeness_wtp(
        wanted_keys=list(range(100)), attributes=["f0"],
        price_steps=[(0.4, 5.0)],
    )
    b1.submit(arbiter, wtp_bonus)
    arbiter.run_round()
    make_buyer(arbiter, "b2", world, price=10.0)
    arbiter.run_round()
    recs = arbiter.recommendations.recommend("b2")
    recommended = {r.dataset for r in recs}
    # b2 should be pointed at something b1 bought that b2 hasn't
    assert recommended
    assert all(r.leaks_information for r in recs)


def test_multi_round_lineage_accumulates(world):
    arbiter = Arbiter(internal_market())
    seller = SellerPlatform("team_data")
    seller.package(world.datasets[0])
    seller.share_all(arbiter)
    for i in range(3):
        make_buyer(arbiter, f"b{i}", world, price=10.0)
        arbiter.run_round()
    sales = arbiter.lineage.sales_of("seller_0")
    assert len(sales) == 3
    assert {s.buyer for s in sales} == {"b0", "b1", "b2"}
    # bonus points minted once per transaction
    grant = internal_market().participation_grant
    reward = internal_market().seller_reward
    assert arbiter.ledger.balance("team_data") == pytest.approx(
        grant + 3 * reward
    )


def test_internal_market_welfare_scales_with_buyers(world):
    arbiter = Arbiter(internal_market())
    arbiter.accept_dataset(world.datasets[0], seller="s1")
    for i in range(5):
        make_buyer(arbiter, f"team_{i}", world, price=10.0)
    result = arbiter.run_round()
    # posted price 0 serves every team (welfare-maximizing allocation)
    assert result.transactions == 5


def test_run_round_with_no_pending_wtps(world):
    arbiter = Arbiter(internal_market())
    arbiter.accept_dataset(world.datasets[0], seller="s1")
    result = arbiter.run_round()
    assert result.transactions == 0
    assert result.rejections == []


def test_duplicate_registration_rejected(world):
    arbiter = Arbiter(internal_market())
    arbiter.register_participant("x")
    with pytest.raises(Exception, match="already registered"):
        arbiter.register_participant("x")
