"""Tests for the vectorized valuation engine.

Covers the ``CoalitionGame.value_batch`` memoization contract (each
distinct coalition evaluated once, no double-counting when the scalar and
batched paths interleave, unknown players rejected), equivalence of the
vectorized estimators with the scalar reference implementations on seeded
games, and the batched WTP evaluation surface the arbiter round uses.
"""

import numpy as np
import pytest

from repro.errors import ValuationError
from repro.relation import Column, Relation
from repro.valuation import (
    CoalitionGame,
    exact_shapley,
    knn_shapley,
    leave_one_out,
    monte_carlo_shapley,
    truncated_monte_carlo_shapley,
)
from repro.valuation.workloads import capped_additive_game
from repro.wtp import PriceCurve, QueryCompletenessTask, WTPFunction


def counting_game(n=4, batch_fn=True):
    """Additive game that counts characteristic-function invocations."""
    players = [f"p{i}" for i in range(n)]
    weights = np.arange(1.0, n + 1.0)
    index = {p: i for i, p in enumerate(players)}
    calls = {"scalar": 0, "batch_rows": 0}

    def value(s):
        calls["scalar"] += 1
        return float(sum(weights[index[p]] for p in s))

    def value_batch(members):
        calls["batch_rows"] += members.shape[0]
        return members.astype(float) @ weights

    game = CoalitionGame.of(
        players, value, value_batch if batch_fn else None
    )
    return game, calls


def capped_game(n, seed=0, vectorized=True):
    return capped_additive_game(n, seed=seed, vectorized=vectorized)


# -- value_batch memoization semantics ---------------------------------------


def test_value_batch_counts_each_distinct_coalition_once():
    game, calls = counting_game()
    values = game.value_batch([{"p0"}, {"p0", "p1"}, {"p0"}, {"p0", "p1"}])
    assert values.tolist() == [1.0, 3.0, 1.0, 3.0]
    # four requests, two distinct coalitions -> two evaluations
    assert game.evaluations == 2
    assert calls["batch_rows"] == 2


def test_value_then_batch_does_not_double_count():
    game, calls = counting_game()
    game.value({"p0"})
    assert game.evaluations == 1
    values = game.value_batch([{"p0"}, {"p1"}])
    assert values.tolist() == [1.0, 2.0]
    # {"p0"} was a cache hit inside the batch: only {"p1"} is new
    assert game.evaluations == 2
    assert calls["scalar"] + calls["batch_rows"] == 2


def test_batch_then_value_does_not_double_count():
    game, calls = counting_game()
    game.value_batch([{"p0", "p2"}])
    assert game.evaluations == 1
    assert game.value({"p0", "p2"}) == 4.0
    assert game.evaluations == 1  # cache hit on the scalar path
    assert calls["scalar"] == 0  # the scalar fn never ran


def test_value_batch_without_batch_fn_falls_back_to_scalar_fn():
    game, calls = counting_game(batch_fn=False)
    values = game.value_batch([{"p0"}, {"p0", "p3"}, {"p0"}])
    assert values.tolist() == [1.0, 5.0, 1.0]
    assert calls["scalar"] == 2  # deduplicated before the fallback loop


def test_batch_fn_only_game_serves_scalar_value():
    weights = np.array([2.0, 3.0])
    game = CoalitionGame.of(
        ["a", "b"],
        batch_fn=lambda members: members.astype(float) @ weights,
    )
    assert game.value({"a"}) == 2.0
    assert game.value({"a", "b"}) == 5.0
    assert game.evaluations == 2


def test_value_batch_rejects_unknown_players():
    game, _calls = counting_game()
    with pytest.raises(ValuationError, match="unknown players"):
        game.value_batch([{"p0"}, {"nope"}])


def test_value_batch_rejects_misshapen_membership():
    game, _calls = counting_game(n=4)
    with pytest.raises(ValuationError, match="membership matrix"):
        game.value_batch(np.ones((2, 5), dtype=bool))


def test_value_batch_rejects_wrong_length_batch_fn():
    game = CoalitionGame.of(
        ["a", "b"], batch_fn=lambda members: np.zeros(99)
    )
    with pytest.raises(ValuationError, match="batch_fn returned"):
        game.value_batch([{"a"}])


def test_value_batch_empty_input():
    game, _calls = counting_game()
    assert game.value_batch([]).shape == (0,)
    assert game.evaluations == 0


def test_game_requires_a_characteristic_function():
    with pytest.raises(ValuationError):
        CoalitionGame.of(["a"])


# -- vectorized estimators match the scalar reference ------------------------


@pytest.mark.parametrize("vectorized", [True, False])
def test_monte_carlo_batched_matches_scalar(vectorized):
    batched = monte_carlo_shapley(
        capped_game(12, vectorized=vectorized), 80, seed=3
    )
    scalar = monte_carlo_shapley(
        capped_game(12, vectorized=False), 80, seed=3, batched=False
    )
    for p in scalar:
        assert batched[p] == pytest.approx(scalar[p], abs=1e-6)


def test_monte_carlo_batched_matches_scalar_evaluation_count():
    g1 = capped_game(10)
    g2 = capped_game(10, vectorized=False)
    monte_carlo_shapley(g1, 40, seed=5)
    monte_carlo_shapley(g2, 40, seed=5, batched=False)
    # same permutations from the same seed -> same distinct coalitions
    assert g1.evaluations == g2.evaluations


@pytest.mark.parametrize("tolerance", [0.02, 0.2])
def test_truncated_mc_batched_matches_scalar(tolerance):
    batched = truncated_monte_carlo_shapley(
        capped_game(12), 80, truncation_tolerance=tolerance, seed=3
    )
    scalar = truncated_monte_carlo_shapley(
        capped_game(12, vectorized=False), 80,
        truncation_tolerance=tolerance, seed=3, batched=False,
    )
    for p in scalar:
        assert batched[p] == pytest.approx(scalar[p], abs=1e-6)


def test_truncated_mc_batched_preserves_truncation_savings():
    g_trunc = capped_game(12)
    g_full = capped_game(12)
    truncated_monte_carlo_shapley(
        g_trunc, 60, truncation_tolerance=0.05, seed=3
    )
    monte_carlo_shapley(g_full, 60, seed=3)
    assert g_trunc.evaluations < g_full.evaluations


def test_exact_shapley_batched_matches_scalar():
    batched = exact_shapley(capped_game(8))
    scalar = exact_shapley(capped_game(8, vectorized=False), batched=False)
    for p in scalar:
        assert batched[p] == pytest.approx(scalar[p], abs=1e-9)


def test_exact_shapley_batched_efficiency_glove():
    def glove_batch(members):
        lefts = members[:, 0].astype(float)
        rights = members[:, 1:].sum(axis=1).astype(float)
        return np.minimum(lefts, rights)

    game = CoalitionGame.of(["a", "b", "c"], batch_fn=glove_batch)
    shapley = exact_shapley(game)
    assert shapley["a"] == pytest.approx(2 / 3)
    assert shapley["b"] == pytest.approx(1 / 6)
    assert shapley["c"] == pytest.approx(1 / 6)


def test_leave_one_out_uses_one_batched_call():
    game, calls = counting_game(n=5)
    loo = leave_one_out(game)
    assert game.evaluations == 6  # grand coalition + 5 drop-one coalitions
    assert loo == {f"p{i}": float(i + 1) for i in range(5)}


def test_knn_shapley_batched_matches_scalar():
    rng = np.random.default_rng(11)
    x = rng.normal(0, 1, size=(120, 3))
    y = (x[:, 0] - x[:, 2] > 0).astype(int)
    x_test, y_test = x[:15], y[:15]
    batched = knn_shapley(x, y, x_test, y_test, k=3)
    scalar = knn_shapley(x, y, x_test, y_test, k=3, batched=False)
    np.testing.assert_allclose(batched, scalar, atol=1e-9)


def test_knn_shapley_batched_single_training_point():
    x = np.array([[0.0, 0.0]])
    y = np.array([1])
    x_test = np.array([[1.0, 1.0], [2.0, 2.0]])
    y_test = np.array([1, 0])
    batched = knn_shapley(x, y, x_test, y_test, k=1)
    scalar = knn_shapley(x, y, x_test, y_test, k=1, batched=False)
    np.testing.assert_allclose(batched, scalar, atol=1e-12)


def test_in_core_early_exits_on_scalar_games():
    from repro.valuation import in_core

    game, calls = counting_game(n=6, batch_fn=False)
    # grossly inefficient allocation: violated by the very first singleton
    allocation = {p: 0.0 for p in game.players}
    allocation["p5"] = game.value(game.grand_coalition)
    assert not in_core(game, allocation)
    # grand coalition + p0's singleton — not all 2^6 - 2 coalitions
    assert calls["scalar"] <= 3


# -- batched WTP evaluation (the arbiter's step-2 surface) -------------------


def completeness_world():
    relation = Relation(
        "r",
        [Column("entity_id", "int"), Column("f0", "any")],
        [(1, 1.0), (2, None), (3, 3.0)],
    )
    task = QueryCompletenessTask(wanted_keys=[1, 2, 3], attributes=["f0"])
    wtp = WTPFunction(
        buyer="b", task=task, curve=PriceCurve.of((0.3, 10.0), (0.8, 50.0))
    )
    return relation, wtp


def test_evaluate_batch_matches_scalar_evaluate():
    relation, wtp = completeness_world()
    outcomes = wtp.evaluate_batch([relation, relation])
    satisfaction, price = wtp.evaluate(relation)
    assert len(outcomes) == 2
    for outcome in outcomes:
        assert outcome.evaluated
        assert outcome.satisfaction == pytest.approx(satisfaction)
        assert outcome.price == pytest.approx(price)


def test_evaluate_batch_contains_per_candidate_failures():
    relation, wtp = completeness_world()
    bad = Relation("bad", [Column("x", "int")], [(1,)])  # lacks key column
    outcomes = wtp.evaluate_batch([bad, relation])
    assert not outcomes[0].evaluated and outcomes[0].error is None
    assert outcomes[1].evaluated


def test_evaluate_batch_captures_crashes_without_sinking_batch():
    class SometimesCrashes:
        required_attributes = ["f0"]

        def evaluate(self, relation):
            if len(relation) < 2:
                raise ZeroDivisionError("buyer bug")
            return 0.9

    relation, _ = completeness_world()
    tiny = Relation(
        "tiny", [Column("entity_id", "int"), Column("f0", "any")], [(1, 1.0)]
    )
    wtp = WTPFunction(
        buyer="b", task=SometimesCrashes(), curve=PriceCurve.single(0.5, 7.0)
    )
    outcomes = wtp.evaluate_batch([tiny, relation])
    assert isinstance(outcomes[0].error, ZeroDivisionError)
    assert outcomes[1].evaluated
    assert outcomes[1].price == 7.0


def test_evaluate_batch_one_unconvertible_result_does_not_sink_batch():
    class WeirdBatchTask:
        required_attributes = ["f0"]

        def evaluate(self, relation):
            return 0.9

        def evaluate_batch(self, relations):
            return [0.9, {"oops": 1}]

    relation, _ = completeness_world()
    wtp = WTPFunction(
        buyer="b", task=WeirdBatchTask(), curve=PriceCurve.single(0.5, 7.0)
    )
    outcomes = wtp.evaluate_batch([relation, relation])
    assert outcomes[0].evaluated and outcomes[0].price == 7.0
    # the dict result crashes pricing for its own slot only
    assert isinstance(outcomes[1].error, TypeError)


def test_evaluate_batch_keeps_non_float_satisfaction_raw():
    """A bool satisfaction must survive unlaundered so the arbiter's
    sanity check can reject it, exactly as the scalar path would."""

    class BoolTask:
        required_attributes = ["f0"]

        def evaluate(self, relation):
            return True

        def evaluate_batch(self, relations):
            return [True for _ in relations]

    relation, _ = completeness_world()
    wtp = WTPFunction(
        buyer="b", task=BoolTask(), curve=PriceCurve.single(0.5, 7.0)
    )
    (outcome,) = wtp.evaluate_batch([relation])
    assert outcome.satisfaction is True  # not coerced to 1.0
    assert outcome.price == wtp.evaluate(relation)[1]


def test_evaluate_batch_none_return_is_a_crash_not_cannot_run():
    """A buggy task returning None from evaluate() must stay audit-visible
    as a crash (the scalar path raised in price_for), not be silently
    mapped to 'task cannot run'."""

    class BuggyNoneTask(QueryCompletenessTask):
        def evaluate(self, relation):
            return None

    relation, _ = completeness_world()
    task = BuggyNoneTask(wanted_keys=[1], attributes=["f0"])
    wtp = WTPFunction(
        buyer="b", task=task, curve=PriceCurve.single(0.5, 7.0)
    )
    (outcome,) = wtp.evaluate_batch([relation])
    assert isinstance(outcome.error, TypeError)


def test_price_for_batch_matches_scalar_price_for():
    curve = PriceCurve.of((0.2, 5.0), (0.5, 20.0), (0.9, 100.0))
    points = [0.0, 0.1999, 0.2, 0.35, 0.5, 0.7, 0.9, 1.0, float("nan")]
    batch = curve.price_for_batch(points)
    for s, p in zip(points, batch):
        assert p == curve.price_for(s)
    # NaN satisfaction never commands a price on either path
    assert curve.price_for(float("nan")) == 0.0
