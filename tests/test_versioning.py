"""Tests for versioning (Varian screening menus)."""

import math

import pytest

from repro.errors import PricingError
from repro.pricing import (
    BuyerType,
    design_version_menu,
    menu_is_incentive_compatible,
)


def whale(fraction=0.3, scale=100.0):
    return BuyerType("whale", fraction, lambda q: scale * q)


def casual(fraction=0.7, scale=40.0):
    # concave: casual buyers get most of their value from a small sample
    return BuyerType("casual", fraction, lambda q: scale * math.sqrt(q))


def test_buyer_type_validation():
    with pytest.raises(PricingError):
        BuyerType("x", 0.0, lambda q: q)
    with pytest.raises(PricingError):
        BuyerType("x", 0.5, lambda q: q + 1.0)  # utility(0) != 0


def test_menu_validation():
    with pytest.raises(PricingError, match="sum"):
        design_version_menu(whale(0.8), casual(0.7))
    with pytest.raises(PricingError, match="at least as much"):
        design_version_menu(casual(0.3, scale=10.0), whale(0.5, scale=100.0))


def test_screening_beats_degenerate_menus():
    menu = design_version_menu(whale(), casual())
    assert menu.strategy == "screen"
    high_only = whale().fraction * 100.0
    single = (whale().fraction + casual().fraction) * 40.0
    assert menu.expected_revenue > max(high_only, single)
    # the damaged version really is damaged, and cheaper
    assert 0 < menu.low.quality < 1
    assert menu.low.price < menu.high.price
    assert menu.high.quality == 1.0


def test_menu_is_incentive_compatible():
    h, l = whale(), casual()
    menu = design_version_menu(h, l)
    assert menu_is_incentive_compatible(menu, h, l)


def test_high_only_when_low_type_worthless():
    h = whale(0.5, scale=100.0)
    l = BuyerType("freeloader", 0.5, lambda q: 0.1 * q)
    menu = design_version_menu(h, l)
    assert menu.strategy == "high_only"
    assert menu.low is None
    assert menu.expected_revenue == pytest.approx(50.0)
    assert menu_is_incentive_compatible(menu, h, l)


def test_single_version_when_types_are_close():
    h = BuyerType("h", 0.2, lambda q: 50.0 * q)
    l = BuyerType("l", 0.8, lambda q: 49.0 * q)
    menu = design_version_menu(h, l)
    # with linear utilities and nearly identical values, damaging the good
    # cannot pay: sell one version to everyone at the low valuation
    assert menu.strategy == "single_version"
    assert menu.expected_revenue == pytest.approx(49.0)


def test_information_rent_left_to_high_type():
    """The high type strictly gains surplus under screening (their rent)."""
    h, l = whale(), casual()
    menu = design_version_menu(h, l)
    high_surplus = h.utility(1.0) - menu.high.price
    assert high_surplus > 0
    low_surplus = l.utility(menu.low.quality) - menu.low.price
    assert low_surplus == pytest.approx(0.0, abs=1e-9)  # low IR binds
