"""Component-scoped plan-cache invalidation, LRU bounds and accounting.

The cache no longer drops everything on any metadata delta: each entry is
keyed by the join-graph component fingerprints its result depended on
(:meth:`IndexBuilder.component_fingerprints`), so churn in unrelated
components leaves entries servable, while deltas touching a dependency —
including retirements and component merges — evict exactly the affected
entries.  A delta subscription additionally evicts entries whose
attributes a newly arrived column could match."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataMarket, internal_market
from repro.errors import IntegrationError
from repro.relation import Column, Relation

#: per-component name schemes chosen (and verified by the similarity
#: assertions below) so cross-stem column names score under every matching
#: threshold — retention must not hinge on luck
STEMS = ("user", "grid", "planet")
KEYS = {"user": "userkey", "grid": "gridref", "planet": "planetno"}
N_ROWS = 30


def make_ds(stem: str, i: int, seed: int = 0) -> Relation:
    """Component ``stem``: datasets share the ``KEYS[stem]`` key domain
    (disjoint across stems) plus two float attributes."""
    stem_index = STEMS.index(stem) if stem in STEMS else 9
    rng = np.random.default_rng(seed + 100 * i + 10_000 * stem_index)
    offset = stem_index * 10_000
    cols = [
        Column(KEYS[stem], "int"),
        Column(f"{stem}{i}", "float"),
        Column(f"{stem}{i + 1}", "float"),
    ]
    rows = [
        (offset + k, *(float(v) for v in rng.normal(size=2)))
        for k in range(N_ROWS)
    ]
    return Relation(f"{stem}_ds{i}", cols, rows)


def seeded_markets():
    cached = DataMarket(internal_market())
    uncached = DataMarket(internal_market(), plan_cache=False)
    for market in (cached, uncached):
        for stem in STEMS:
            for i in range(3):
                market.register_dataset(make_ds(stem, i), seller=f"s_{stem}")
    return cached, uncached


def canonical(result):
    return [
        (m.plan.describe(), sorted(m.matched.items()), m.missing,
         tuple(sorted(map(repr, m.relation.rows))))
        for m in result.mashups
    ]


ALPHA_REQ = dict(key="userkey")
ALPHA_ATTRS = ["user0", "user2"]


def plan_both(cached, uncached):
    pc = cached.plan(ALPHA_ATTRS, **ALPHA_REQ)
    pu = uncached.plan(ALPHA_ATTRS, **ALPHA_REQ)
    assert canonical(pc) == canonical(pu)
    return pc


# ---------------------------------------------------------------------------
# retention under disjoint-component churn
# ---------------------------------------------------------------------------

def test_cache_survives_unrelated_component_churn():
    cached, uncached = seeded_markets()
    first = plan_both(cached, uncached)
    assert first.cached is False
    # churn bravo/charlie: update, new arrival, retirement
    for market in (cached, uncached):
        market.update_dataset(make_ds("grid", 0, seed=9), seller="s_grid")
        market.register_dataset(make_ds("planet", 7), seller="s_planet")
        market.retire_dataset("grid_ds1")
    after = plan_both(cached, uncached)
    assert after.cached is True, "disjoint churn must not evict the entry"
    assert after.as_of > first.as_of
    stats = cached.plan_cache_stats
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.invalidations == 0


def test_retiring_dependency_invalidates_entry():
    cached, uncached = seeded_markets()
    plan_both(cached, uncached)
    for market in (cached, uncached):
        market.retire_dataset("user_ds1")
    after = plan_both(cached, uncached)
    assert after.cached is False
    assert cached.plan_cache_stats.invalidations == 1


def test_updating_dependency_invalidates_entry():
    cached, uncached = seeded_markets()
    plan_both(cached, uncached)
    for market in (cached, uncached):
        market.update_dataset(make_ds("user", 0, seed=5), seller="s_user")
    after = plan_both(cached, uncached)
    assert after.cached is False
    assert cached.plan_cache_stats.invalidations >= 1


def test_component_merge_detected_via_fingerprints():
    """A newcomer that joins the dependency component by pure value
    overlap (no attribute-name similarity, so the eager delta check stays
    silent) must still evict the entry at lookup: the component fingerprint
    changed and join paths may differ."""
    cached, uncached = seeded_markets()
    plan_both(cached, uncached)
    rng = np.random.default_rng(1)
    bridge = Relation(
        "zzz_bridge",
        [Column("zzzref", "int"), Column("zzzval", "float")],
        [(k, float(v)) for k, v in zip(range(N_ROWS), rng.normal(size=N_ROWS))],
    )  # zzzref values == userkey domain -> overlap edge into user component
    for market in (cached, uncached):
        market.register_dataset(bridge, seller="s_z")
    assert cached.index.component_of("zzz_bridge") == (
        cached.index.component_of("user_ds0")
    ), "bridge should have merged into the alpha component"
    after = plan_both(cached, uncached)
    assert after.cached is False
    assert cached.plan_cache_stats.invalidations == 1


def test_new_matching_column_in_foreign_component_evicts():
    """A dataset in a brand-new component whose column is named exactly
    like a cached attribute must evict that entry (it is a new candidate
    the cached result never saw)."""
    cached, uncached = seeded_markets()
    plan_both(cached, uncached)
    rng = np.random.default_rng(2)
    newcomer = Relation(
        "fresh_ds0",
        [Column("freshkey", "int"), Column("user0", "float")],
        [
            (50_000 + k, float(v))
            for k, v in zip(range(N_ROWS), rng.normal(size=N_ROWS))
        ],
    )
    for market in (cached, uncached):
        market.register_dataset(newcomer, seller="s_d")
    after = plan_both(cached, uncached)
    assert after.cached is False
    assert cached.plan_cache_stats.invalidations == 1


# ---------------------------------------------------------------------------
# LRU bound
# ---------------------------------------------------------------------------

def test_lru_bound_evicts_oldest_entry():
    market = DataMarket(internal_market(), plan_cache_size=2)
    for stem in STEMS:
        for i in range(2):
            market.register_dataset(make_ds(stem, i), seller=f"s_{stem}")
    requests = [
        (["user0"], "userkey"),
        (["grid0"], "gridref"),
        (["planet0"], "planetno"),
    ]
    for attrs, key in requests:
        assert market.plan(attrs, key=key).cached is False
    stats = market.plan_cache_stats
    assert stats.lru_evictions == 1
    # oldest (alpha) was evicted; the two newest are still hits
    assert market.plan(*requests[1][:1], key=requests[1][1]).cached is True
    assert market.plan(*requests[2][:1], key=requests[2][1]).cached is True
    assert market.plan(*requests[0][:1], key=requests[0][1]).cached is False
    assert market.plan_cache_stats.lru_evictions == 2  # bravo pushed out


def test_lru_hit_refreshes_recency():
    market = DataMarket(internal_market(), plan_cache_size=2)
    for stem in STEMS:
        market.register_dataset(make_ds(stem, 0), seller=f"s_{stem}")
    market.plan(["user0"], key="userkey")
    market.plan(["grid0"], key="gridref")
    assert market.plan(["user0"], key="userkey").cached is True  # refresh
    market.plan(["planet0"], key="planetno")  # evicts grid, not user
    assert market.plan(["user0"], key="userkey").cached is True
    assert market.plan(["grid0"], key="gridref").cached is False


def test_plan_cache_size_validated():
    with pytest.raises(IntegrationError):
        DataMarket(internal_market(), plan_cache_size=0)


# ---------------------------------------------------------------------------
# accounting + lifecycle
# ---------------------------------------------------------------------------

def test_stats_accounting_under_mixed_churn():
    cached, uncached = seeded_markets()
    plan_both(cached, uncached)                      # miss
    plan_both(cached, uncached)                      # hit
    for market in (cached, uncached):                # unrelated churn
        market.update_dataset(make_ds("grid", 1, seed=3), seller="s_grid")
    plan_both(cached, uncached)                      # hit (retained)
    for market in (cached, uncached):                # dependency churn
        market.update_dataset(make_ds("user", 1, seed=3), seller="s_user")
    plan_both(cached, uncached)                      # miss after eviction
    stats = cached.plan_cache_stats
    assert stats.hits == 2
    assert stats.misses == 2
    assert stats.invalidations >= 1
    assert stats.uncacheable == 0
    assert stats.requests == 4
    assert uncached.plan_cache_stats.requests == 0


def test_miss_path_serves_copies_too():
    """Mutating the mashups returned by the *miss* (populating) call must
    not poison later cache hits — both paths hand out fresh wrappers."""
    market = DataMarket(internal_market())
    market.register_dataset(make_ds("user", 0), seller="s_user")
    first = market.plan(["user0"], key="userkey")
    assert first.cached is False and first.mashups
    victim = first.mashups[0]
    victim.matched.clear()
    victim.plan.joins.append("POISON")
    hit = market.plan(["user0"], key="userkey")
    assert hit.cached is True
    assert hit.mashups[0].matched, "cache served the caller-mutated entry"
    assert "POISON" not in hit.mashups[0].plan.joins


def test_component_fingerprint_api():
    """The index's changed-component reporting surface: fingerprints are
    aligned with components(), stable while nothing changes, and diffable
    across deltas."""
    market = DataMarket(internal_market())
    market.register_dataset(make_ds("user", 0), seller="s_user")
    market.register_dataset(make_ds("grid", 0), seller="s_grid")
    index = market.index
    fps = index.component_fingerprints()
    assert len(fps) == len(index.components())
    assert index.component_fingerprint_set() == frozenset(fps)
    for comp, fp in zip(index.components(), fps):
        for ds in comp:
            assert index.component_fingerprint_of(ds) == fp
    assert index.component_fingerprint_of("nope") is None
    # idempotent while the graph is unchanged
    assert index.component_fingerprints() == fps
    assert index.changed_components(fps) == frozenset()
    # a delta in one component changes exactly that fingerprint
    user_fp = index.component_fingerprint_of("user_ds0")
    market.update_dataset(make_ds("user", 0, seed=8), seller="s_user")
    changed = index.changed_components(fps)
    assert changed == {user_fp}
    assert index.component_fingerprint_of("grid_ds0") in (
        index.component_fingerprint_set()
    )


def test_builder_close_detaches_plan_cache_listener():
    market = DataMarket(internal_market())
    market.register_dataset(make_ds("user", 0), seller="s_user")
    market.plan(["user0"], key="userkey")
    market.builder.close()
    # detach is idempotent, empties the cache and disables caching: with
    # no delta subscription a newly cached entry could go stale silently
    market.builder.close()
    assert market.planner._plan_cache == {}
    assert market.plan(["user0"], key="userkey").cached is False
    assert market.planner._plan_cache == {}
    assert market.plan(["user0"], key="userkey").cached is False


def test_lru_hot_entry_survives_churn_at_capacity():
    """Regression guard on hit recency: a hot entry re-touched between
    inserts at a full cache must survive arbitrary insert/evict churn —
    only the cold entries rotate out."""
    market = DataMarket(internal_market(), plan_cache_size=2)
    for stem in STEMS:
        for i in range(2):
            market.register_dataset(make_ds(stem, i), seller=f"s_{stem}")
    hot = (["user0"], "userkey")
    cold = [(["grid0"], "gridref"), (["planet0"], "planetno"),
            (["grid1"], "gridref"), (["planet1"], "planetno")]
    market.plan(hot[0], key=hot[1])
    for attrs, key in cold:
        assert market.plan(attrs, key=key).cached is False  # insert
        assert market.plan(hot[0], key=hot[1]).cached is True  # re-touch
    # four inserts against size 2 with the hot entry always re-touched:
    # every eviction hit a cold entry
    assert market.plan_cache_stats.lru_evictions == len(cold) - 1
    assert market.plan(hot[0], key=hot[1]).cached is True


# ---------------------------------------------------------------------------
# teardown: no leaked metadata listeners
# ---------------------------------------------------------------------------

def test_builder_close_unsubscribes_every_listener():
    """`MashupBuilder.close()` must walk the whole detach chain: after it,
    the metadata engine holds zero subscribers — a long-running deployment
    discarding builders must not accumulate dangling listeners."""
    market = DataMarket(internal_market())
    market.register_dataset(make_ds("user", 0), seller="s_user")
    assert len(market.metadata.subscribers) > 0
    market.builder.close()
    assert market.metadata.subscribers == ()
    market.builder.close()  # idempotent
    assert market.metadata.subscribers == ()


def test_closed_builder_receives_no_further_deltas():
    market = DataMarket(internal_market())
    market.register_dataset(make_ds("user", 0), seller="s_user")
    market.plan(["user0"], key="userkey")
    index_version = market.index.graph_version
    market.builder.close()
    # a delta arriving after teardown reaches no engine: the index keeps
    # its pre-close graph and the plan cache stays empty
    market.metadata.register(make_ds("grid", 0), owner="s_grid")
    assert market.index.graph_version == index_version
    assert "grid_ds0" not in market.index._profiles
    assert market.planner._plan_cache == {}
