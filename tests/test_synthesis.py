"""Tests for mapping-function synthesis."""

import pytest

from repro.errors import SynthesisError
from repro.integration import (
    AffineMap,
    DictionaryMap,
    describe_affine,
    fit_affine,
    fit_dictionary,
    synthesize_mapping,
)


def test_fit_affine_exact():
    m = fit_affine([(0.0, 32.0), (100.0, 212.0), (37.0, 98.6)])
    assert m.a == pytest.approx(1.8)
    assert m.b == pytest.approx(32.0)
    assert m.apply(10.0) == pytest.approx(50.0)


def test_fit_affine_rejects_nonlinear():
    with pytest.raises(SynthesisError, match="no affine map"):
        fit_affine([(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)])


def test_fit_affine_needs_two_distinct_x():
    with pytest.raises(SynthesisError):
        fit_affine([(1.0, 2.0)])
    with pytest.raises(SynthesisError, match="underdetermined"):
        fit_affine([(1.0, 2.0), (1.0, 2.0)])


def test_affine_inverse_roundtrip():
    m = AffineMap(1.8, 32.0)
    inv = m.inverse()
    assert inv.apply(m.apply(25.0)) == pytest.approx(25.0)
    assert not AffineMap(0.0, 1.0).is_invertible
    with pytest.raises(SynthesisError):
        AffineMap(0.0, 1.0).inverse()


def test_fit_dictionary():
    m = fit_dictionary([("alice", "E01"), ("bob", "E02")])
    assert m.apply("alice") == "E01"
    assert m.is_invertible
    inv = m.inverse()
    assert inv.apply("E02") == "bob"
    with pytest.raises(SynthesisError):
        m.apply("unknown")


def test_fit_dictionary_contradiction():
    with pytest.raises(SynthesisError, match="contradictory"):
        fit_dictionary([("a", 1), ("a", 2)])
    with pytest.raises(SynthesisError):
        fit_dictionary([(None, None)])


def test_dictionary_not_invertible_when_not_bijective():
    m = DictionaryMap({"a": "x", "b": "x"})
    assert not m.is_invertible
    with pytest.raises(SynthesisError):
        m.inverse()


def test_synthesize_prefers_affine_for_numeric():
    m = synthesize_mapping([(0, 32.0), (100, 212.0)])
    assert isinstance(m, AffineMap)


def test_synthesize_falls_back_to_dictionary():
    # non-affine numeric data still gets a lookup table
    m = synthesize_mapping([(0, 0), (1, 1), (2, 4)])
    assert isinstance(m, DictionaryMap)
    m2 = synthesize_mapping([("x", "a"), ("y", "b")])
    assert isinstance(m2, DictionaryMap)


def test_synthesize_empty_raises():
    with pytest.raises(SynthesisError):
        synthesize_mapping([])
    with pytest.raises(SynthesisError):
        synthesize_mapping([(None, 1)])


def test_describe_affine_recognizes_conversions():
    assert describe_affine(1.8, 32.0) == "celsius_to_fahrenheit"
    assert describe_affine(1000.0, 0.0) == "kilo_to_base"
    assert describe_affine(7.7, 1.2) is None
    assert "celsius_to_fahrenheit" in AffineMap(1.8, 32.0).describe()
