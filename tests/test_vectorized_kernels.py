"""Vectorized columnar kernels vs the row-loop oracle.

The iteration engine executes every node with the eager row-at-a-time
operators — by construction the semantics reference.  These tests drive
randomized relations (nulls, NaN floats, non-ASCII strings, mixed key
dtypes) through both engines and require **bit-identical** results:
rows, row order, schema, relation name and provenance.  They also pin
the deliberate vectorization refusals — the cases where
``Predicate.mask`` returns ``None`` because numpy arithmetic cannot
reproduce Python row semantics — and that selection pushdown through
renames preserves predicate *structure* (an ``Eq`` stays an ``Eq``, so
it stays vectorizable below the rename).
"""

import math
import random

import numpy as np
import pytest

from repro.relation import (
    And,
    Column,
    ColumnarEngine,
    Eq,
    In,
    IterationEngine,
    LeafRelation,
    Predicate,
    Range,
    Relation,
    Select,
    push_down,
)

NAN = float("nan")


# ---------------------------------------------------------------------------
# randomized corpora
# ---------------------------------------------------------------------------

STRINGS = ["alpha", "béta", "γάμμα", "Δelta", "", "naïve", "z"]


def random_cell(rng, dtype):
    if rng.random() < 0.1:
        return None
    if dtype == "int":
        return rng.randrange(-5, 15)
    if dtype == "float":
        return NAN if rng.random() < 0.15 else round(rng.uniform(-3, 3), 3)
    if dtype == "str":
        return rng.choice(STRINGS)
    if dtype == "bool":
        return rng.random() < 0.5
    raise AssertionError(dtype)


def random_relation(rng, name, spec, n):
    cols = [Column(c, dtype) for c, dtype in spec]
    rows = [
        tuple(random_cell(rng, dtype) for _, dtype in spec)
        for _ in range(n)
    ]
    return Relation(name, cols, rows)


def obj_array(rel, name):
    """Object-dtype column vector, as the columnar engine feeds masks."""
    vals = rel.columnar.values(name)
    arr = np.empty(len(vals), dtype=object)
    arr[:] = vals
    return arr


def assert_identical(tree):
    oracle = IterationEngine().execute(tree)
    fast = ColumnarEngine().execute(tree)
    assert fast.rows == oracle.rows
    assert fast.schema == oracle.schema
    assert fast.name == oracle.name
    assert fast.provenance == oracle.provenance
    return oracle


# ---------------------------------------------------------------------------
# vectorized select vs row loop
# ---------------------------------------------------------------------------

PREDICATES = [
    Eq("i", 3),
    Eq("s", "béta"),
    Eq("f", 1.5),
    Eq("b", True),
    Eq("i", None),
    In("s", ("alpha", "γάμμα", "missing")),
    In("i", (0, 1, 2, None)),
    Range("f", low=-1.0, high=1.0),
    Range("i", low=0),
    Range("s", high="naïve"),
    And(Range("i", low=0, high=9), In("s", ("alpha", "z"))),
    And(Eq("b", False), Range("f", high=0.0)),
]


@pytest.mark.parametrize("pred", PREDICATES, ids=repr)
def test_select_bit_identical_across_engines(pred):
    rng = random.Random(hash(repr(pred)) & 0xFFFF)
    rel = random_relation(
        rng, "mix",
        [("i", "int"), ("f", "float"), ("s", "str"), ("b", "bool")],
        400,
    )
    assert_identical(LeafRelation(rel).select(pred))


@pytest.mark.parametrize("seed", range(6))
def test_select_randomized_predicates(seed):
    rng = random.Random(seed)
    rel = random_relation(
        rng, "rand",
        [("i", "int"), ("f", "float"), ("s", "str"), ("b", "bool")],
        300,
    )
    picks = [
        Eq("i", rng.randrange(-5, 15)),
        In("s", tuple(rng.sample(STRINGS, 3))),
        Range("f", low=rng.uniform(-2, 0), high=rng.uniform(0, 2)),
        Range("i", low=rng.randrange(-5, 5)),
    ]
    rng.shuffle(picks)
    for pred in (picks[0], And(*picks[:2]), And(*picks)):
        assert_identical(LeafRelation(rel).select(pred))


def test_select_mask_agrees_with_rowcall_per_row():
    rng = random.Random(7)
    rel = random_relation(
        rng, "mix",
        [("i", "int"), ("f", "float"), ("s", "str")],
        200,
    )
    arrays = {c: obj_array(rel, c) for c in rel.columns}
    for pred in (Eq("i", 3), In("s", ("alpha", "z")),
                 Range("f", low=-1.0, high=1.0)):
        mask = pred.mask(arrays, len(rel))
        assert mask is not None
        for keep, row in zip(mask, rel.rows):
            assert bool(keep) == bool(
                pred(dict(zip(rel.columns, row)))
            )


def test_callable_predicate_still_supported():
    rng = random.Random(11)
    rel = random_relation(rng, "r", [("i", "int"), ("s", "str")], 150)
    tree = LeafRelation(rel).select(
        lambda row: row["i"] is not None and row["i"] % 2 == 0,
        columns=["i"],
    )
    assert_identical(tree)


# ---------------------------------------------------------------------------
# deliberate vectorization refusals (mask -> None, row-loop fallback)
# ---------------------------------------------------------------------------

def test_in_with_nan_operand_falls_back_and_agrees():
    # Python membership matches NaN by identity; ``==`` never does.  The
    # mask must refuse, and the engines must still agree bit-for-bit.
    pred = In("f", (NAN, 1.0))
    rows = [(NAN,), (1.0,), (2.0,), (None,)]
    rel = Relation("f", [Column("f", "float")], rows)
    assert pred.mask({"f": obj_array(rel, "f")}, len(rel)) is None
    oracle = assert_identical(LeafRelation(rel).select(pred))
    kept = [r[0] for r in oracle.rows]
    assert 1.0 in kept  # equality member still matches


def test_non_scalar_operand_falls_back_and_agrees():
    pred = Eq("v", [1, 2])  # a list operand would numpy-broadcast
    rel = Relation(
        "r", [Column("v", "str")], [("x",), ("y",)], validate=False
    )
    assert pred.mask({"v": obj_array(rel, "v")}, 2) is None
    assert_identical(LeafRelation(rel).select(pred))


def test_range_nan_cell_passes_both_paths():
    # NaN is neither < low nor > high: the row form keeps it, and the
    # negated-comparison mask must keep it too.
    pred = Range("f", low=0.0, high=10.0)
    rel = Relation(
        "f", [Column("f", "float")],
        [(5.0,), (NAN,), (-1.0,), (None,), (11.0,)],
    )
    oracle = assert_identical(LeafRelation(rel).select(pred))
    kept = [r[0] for r in oracle.rows]
    assert any(isinstance(v, float) and math.isnan(v) for v in kept)
    assert kept[0] == 5.0 and len(kept) == 2


# ---------------------------------------------------------------------------
# pushdown keeps predicate structure
# ---------------------------------------------------------------------------

def find_selects(tree):
    found = []
    stack = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, Select):
            found.append(node)
        stack.extend(node.children())
    return found


def test_pushdown_through_rename_preserves_structure():
    rng = random.Random(3)
    rel = random_relation(rng, "r", [("a", "int"), ("x", "str")], 120)
    tree = (
        LeafRelation(rel)
        .rename({"a": "b"})
        .select(And(Eq("b", 3), Range("b", low=0)))
    )
    pushed = push_down(tree)
    selects = find_selects(pushed)
    assert selects, "selection vanished during pushdown"
    inner = selects[0].predicate
    # still a structured predicate (not an opaque re-keying lambda) and
    # rewritten to read the pre-rename column
    assert isinstance(inner, And)
    assert all(isinstance(p, Predicate) for p in inner.predicates)
    assert inner.referenced_columns() == ("a",)
    assert_identical(pushed)
    assert_identical(tree)


def test_pushdown_past_join_keeps_vectorizable_predicate():
    rng = random.Random(5)
    left = random_relation(rng, "l", [("k", "int"), ("lv", "str")], 200)
    right = random_relation(rng, "r", [("rk", "int"), ("rv", "float")], 80)
    tree = (
        LeafRelation(left)
        .join(LeafRelation(right), on=[("k", "rk")], keep_right=True)
        .select(In("lv", ("alpha", "z")))
    )
    pushed = push_down(tree)
    selects = find_selects(pushed)
    assert selects
    assert all(isinstance(s.predicate, Predicate) for s in selects)
    assert_identical(pushed)
    assert_identical(tree)


# ---------------------------------------------------------------------------
# join kernels: factorize / scalar / tuple must be indistinguishable
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dtype", ["int", "str", "bool"])
def test_factorize_join_bit_identical(dtype):
    rng = random.Random(hash(dtype) & 0xFFFF)
    left = random_relation(
        rng, "l", [("k", dtype), ("lv", "float")], 300
    )
    right = random_relation(
        rng, "r", [("rk", dtype), ("rv", "str")], 90
    )
    tree = LeafRelation(left).join(
        LeafRelation(right), on=[("k", "rk")], keep_right=True
    )
    assert_identical(tree)


def test_mixed_int_bool_keys_join_identically():
    left = Relation(
        "l", [Column("k", "int"), Column("lv", "str")],
        [(0, "a"), (1, "b"), (2, "c"), (None, "d")],
    )
    right = Relation(
        "r", [Column("rk", "bool"), Column("rv", "int")],
        [(True, 10), (False, 20), (None, 30)],
    )
    tree = LeafRelation(left).join(
        LeafRelation(right), on=[("k", "rk")], keep_right=True
    )
    oracle = assert_identical(tree)
    # Python semantics: 1 == True, 0 == False — the factorized kernel
    # must honor numeric cross-dtype equality, and None never matches
    assert sorted((r[0], r[3]) for r in oracle.rows) == [(0, 20), (1, 10)]


def test_float_keys_with_nan_join_identically():
    # NaN keys hit dict-probe identity semantics; floats are excluded
    # from the factorized kernel so both engines share that behavior.
    nan = NAN  # one shared object: identity matters here
    left = Relation(
        "l", [Column("k", "float"), Column("lv", "int")],
        [(1.5, 1), (nan, 2), (None, 3)],
    )
    right = Relation(
        "r", [Column("rk", "float"), Column("rv", "int")],
        [(1.5, 10), (nan, 20), (2.5, 30)],
    )
    tree = LeafRelation(left).join(
        LeafRelation(right), on=[("k", "rk")], keep_right=True
    )
    assert_identical(tree)


@pytest.mark.parametrize("seed", range(4))
def test_composite_key_join_bit_identical(seed):
    rng = random.Random(seed)
    left = random_relation(
        rng, "l", [("k1", "int"), ("k2", "str"), ("lv", "float")], 250
    )
    right = random_relation(
        rng, "r", [("r1", "int"), ("r2", "str"), ("rv", "bool")], 70
    )
    tree = LeafRelation(left).join(
        LeafRelation(right),
        on=[("k1", "r1"), ("k2", "r2")],
        keep_right=True,
    )
    assert_identical(tree)


@pytest.mark.parametrize("seed", range(3))
def test_select_then_join_pipeline_bit_identical(seed):
    rng = random.Random(100 + seed)
    left = random_relation(
        rng, "l", [("k", "int"), ("lv", "float"), ("tag", "str")], 300
    )
    right = random_relation(
        rng, "r", [("rk", "int"), ("rv", "str")], 100
    )
    tree = (
        LeafRelation(left)
        .select(And(Range("lv", low=-1.0), In("tag", ("alpha", "béta"))))
        .join(LeafRelation(right), on=[("k", "rk")], keep_right=True)
        .project(["k", "lv", "rv"])
        .distinct()
    )
    assert_identical(push_down(tree))
    assert_identical(tree)
