"""Tests for WTP functions, price curves, tasks, intrinsic constraints."""

import pytest

from repro.datagen import make_classification_world
from repro.discovery import MetadataEngine
from repro.errors import MarketError
from repro.relation import Relation
from repro.wtp import (
    AggregateAccuracyTask,
    ClassificationTask,
    ExplorationTask,
    IntrinsicRequirements,
    PriceCurve,
    QueryCompletenessTask,
    TaskEvaluationError,
    WTPFunction,
)


# -- price curves --------------------------------------------------------------


def test_price_curve_steps():
    curve = PriceCurve.of((0.8, 100.0), (0.9, 150.0))
    assert curve.price_for(0.5) == 0.0
    assert curve.price_for(0.8) == 100.0
    assert curve.price_for(0.85) == 100.0
    assert curve.price_for(0.95) == 150.0
    assert curve.max_price == 150.0
    assert curve.min_threshold == 0.8


def test_price_curve_validation():
    with pytest.raises(MarketError):
        PriceCurve(())
    with pytest.raises(MarketError, match="increase"):
        PriceCurve.of((0.9, 100.0), (0.8, 150.0))
    with pytest.raises(MarketError, match="non-decreasing"):
        PriceCurve.of((0.8, 150.0), (0.9, 100.0))
    with pytest.raises(MarketError, match="non-negative"):
        PriceCurve.single(0.5, -1.0)


# -- tasks ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def world():
    return make_classification_world(
        n_entities=300, dataset_features=((0, 1, 3, 4),), seed=1
    )


def test_classification_task(world):
    task = ClassificationTask(
        labels=world.label_relation,
        features=["f0", "f1", "f3", "f4"],
    )
    satisfaction = task.evaluate(world.datasets[0])
    assert satisfaction > 0.8  # informative features -> good accuracy


def test_classification_task_fewer_features_worse(world):
    good = ClassificationTask(
        labels=world.label_relation, features=["f0", "f1", "f3", "f4"]
    ).evaluate(world.datasets[0])
    only_one = ClassificationTask(
        labels=world.label_relation, features=["f1"]
    ).evaluate(world.datasets[0].project(["entity_id", "f1"]))
    assert good > only_one


def test_classification_task_errors(world):
    task = ClassificationTask(labels=world.label_relation, features=["f9"])
    with pytest.raises(TaskEvaluationError, match="none of the requested"):
        task.evaluate(world.datasets[0])
    task2 = ClassificationTask(labels=world.label_relation, features=["f0"])
    no_key = world.datasets[0].drop(["entity_id"])
    with pytest.raises(TaskEvaluationError, match="key"):
        task2.evaluate(no_key)
    tiny = world.datasets[0].limit(3)
    with pytest.raises(TaskEvaluationError, match="usable training rows"):
        task2.evaluate(tiny)


def test_query_completeness_task():
    rel = Relation(
        "r",
        [("entity_id", "int"), ("a", "int"), ("b", "int")],
        [(1, 10, 20), (2, 11, None), (3, None, None)],
    )
    task = QueryCompletenessTask(
        wanted_keys=[1, 2, 3, 4], attributes=["a", "b"]
    )
    # key1: 1.0, key2: 0.5, key3: 0, key4 missing -> (1 + .5 + 0 + 0)/4
    assert task.evaluate(rel) == pytest.approx(0.375)
    with pytest.raises(TaskEvaluationError):
        QueryCompletenessTask(wanted_keys=[], attributes=["a"]).evaluate(rel)
    with pytest.raises(TaskEvaluationError):
        QueryCompletenessTask(wanted_keys=[1], attributes=["zz"]).evaluate(rel)


def test_aggregate_accuracy_task():
    rel = Relation("r", [("x", "float")], [(10.0,), (20.0,)])
    task = AggregateAccuracyTask("x", reference_value=15.0)
    assert task.evaluate(rel) == pytest.approx(1.0)
    off = AggregateAccuracyTask("x", reference_value=30.0)
    assert off.evaluate(rel) == pytest.approx(0.5)
    assert AggregateAccuracyTask("x", 1.0, "sum").evaluate(rel) == 0.0
    assert AggregateAccuracyTask("x", 2.0, "count").evaluate(rel) == 1.0
    with pytest.raises(TaskEvaluationError):
        AggregateAccuracyTask("zz", 1.0).evaluate(rel)
    with pytest.raises(TaskEvaluationError):
        AggregateAccuracyTask("x", 1.0, "median").evaluate(rel)


def test_exploration_task_cannot_be_evaluated():
    with pytest.raises(TaskEvaluationError, match="ex post"):
        ExplorationTask(["a"]).evaluate(
            Relation("r", [("a", "int")], [(1,)])
        )


# -- intrinsic requirements --------------------------------------------------------


def test_intrinsic_null_fraction_and_rows():
    rel = Relation("r", [("a", "int")], [(1,), (None,), (None,), (None,)])
    req = IntrinsicRequirements(max_null_fraction=0.5, min_rows=10)
    problems = req.violations(rel, sources=["r"])
    assert len(problems) == 2
    ok = IntrinsicRequirements(max_null_fraction=0.9, min_rows=2)
    assert ok.satisfied_by(rel, sources=["r"])


def test_intrinsic_owner_and_freshness():
    engine = MetadataEngine()
    old = Relation("old", [("a", "int")], [(1,)])
    engine.register(old, owner="alice")
    for i in range(3):
        engine.register(
            Relation("fresh", [("a", "int")], [(i,)]), owner="bob"
        )
    req = IntrinsicRequirements(
        allowed_owners=("bob",), max_version_lag=1
    )
    problems = req.violations(old, sources=["old"], metadata=engine)
    assert any("owned by" in p for p in problems)
    assert any("stale" in p for p in problems)
    assert req.satisfied_by(
        engine.relation("fresh"), sources=["fresh"], metadata=engine
    )


def test_intrinsic_provenance_requirement():
    rel = Relation("r", [("a", "int")], [(1,)]).without_provenance()
    req = IntrinsicRequirements(require_provenance=True)
    assert not req.satisfied_by(rel, sources=["r"])


# -- WTP function ---------------------------------------------------------------


def test_wtp_function_end_to_end(world):
    wtp = WTPFunction(
        buyer="b1",
        task=ClassificationTask(
            labels=world.label_relation, features=["f0", "f1", "f3", "f4"]
        ),
        curve=PriceCurve.of((0.8, 100.0), (0.9, 150.0)),
    )
    satisfaction, price = wtp.evaluate(world.datasets[0])
    assert satisfaction > 0.8
    assert price in (100.0, 150.0)
    assert wtp.attributes == ["f0", "f1", "f3", "f4"]


def test_wtp_try_evaluate_swallows_task_errors(world):
    wtp = WTPFunction(
        buyer="b1",
        task=ExplorationTask(["a"]),
        curve=PriceCurve.single(0.5, 10.0),
        elicitation="ex_post",
    )
    assert wtp.try_evaluate(world.datasets[0]) is None


def test_wtp_rejects_bad_elicitation(world):
    with pytest.raises(MarketError):
        WTPFunction(
            buyer="b",
            task=ExplorationTask(),
            curve=PriceCurve.single(0.5, 1.0),
            elicitation="psychic",
        )
