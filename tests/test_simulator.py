"""Tests for the market simulator: agents, workloads, engine, collusion."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mechanisms import PostedPriceMechanism, RSOPAuction, VickreyAuction
from repro.simulator import (
    Faulty,
    Ignorant,
    Overbidding,
    RiskLover,
    Shading,
    SimulationConfig,
    Truthful,
    bimodal_values,
    build_population,
    compare_designs,
    empirical_ic_regret,
    exponential_values,
    gini,
    lognormal_values,
    make_strategy,
    poisson_arrivals,
    simulate_collusion,
    simulate_mechanism,
    uniform_values,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# -- strategies -----------------------------------------------------------------


def test_strategy_bids(rng):
    assert Truthful().bid(10.0, rng) == 10.0
    assert Shading(0.5).bid(10.0, rng) == 5.0
    assert Overbidding(1.5).bid(10.0, rng) == 15.0
    assert 0 <= Ignorant(scale=50.0).bid(10.0, rng) <= 50.0
    gamble = [RiskLover().bid(10.0, rng) for _ in range(100)]
    assert any(g > 10.0 for g in gamble) and any(g < 10.0 for g in gamble)
    faulty = [Faulty().bid(10.0, rng) for _ in range(100)]
    assert any(f == 0.0 for f in faulty) and any(f == 10.0 for f in faulty)


def test_strategy_validation():
    with pytest.raises(SimulationError):
        Shading(1.5)
    with pytest.raises(SimulationError):
        Overbidding(0.5)
    with pytest.raises(SimulationError):
        make_strategy("telepathic")
    assert make_strategy("shading", factor=0.6).factor == 0.6


# -- workloads -----------------------------------------------------------------


def test_value_samplers(rng):
    for sampler in (uniform_values(0, 10), lognormal_values(),
                    exponential_values(), bimodal_values()):
        draws = [sampler(rng) for _ in range(200)]
        assert all(v >= 0 for v in draws)
        assert np.std(draws) > 0
    with pytest.raises(SimulationError):
        uniform_values(5, 5)
    with pytest.raises(SimulationError):
        lognormal_values(sigma=0)
    with pytest.raises(SimulationError):
        exponential_values(scale=0)
    with pytest.raises(SimulationError):
        bimodal_values(high_fraction=1.0)


def test_poisson_arrivals(rng):
    arrivals = poisson_arrivals(3.0, 50, rng)
    assert len(arrivals) == 50
    assert np.mean(arrivals) == pytest.approx(3.0, abs=1.0)
    with pytest.raises(SimulationError):
        poisson_arrivals(0, 5, rng)


def test_build_population_exact_counts():
    pop = build_population(
        10, {"truthful": 0.5, "shading": 0.3, "ignorant": 0.2}
    )
    labels = [a.strategy.label for a in pop]
    assert len(pop) == 10
    assert labels.count("truthful") == 5
    assert labels.count("shading") == 3
    assert labels.count("ignorant") == 2
    with pytest.raises(SimulationError):
        build_population(0, {"truthful": 1.0})
    with pytest.raises(SimulationError):
        build_population(5, {})


def test_build_population_kwargs():
    pop = build_population(
        2, {"shading": 1.0}, strategy_kwargs={"shading": {"factor": 0.9}}
    )
    assert all(a.strategy.factor == 0.9 for a in pop)


# -- engine ----------------------------------------------------------------------


def test_simulate_truthful_vickrey():
    metrics = simulate_mechanism(
        SimulationConfig(
            mechanism=VickreyAuction(k=1),
            n_rounds=30,
            n_buyers=10,
            value_sampler=uniform_values(0, 100),
            seed=1,
        )
    )
    assert metrics.transactions == 30  # one winner per round
    assert metrics.revenue > 0
    assert metrics.welfare >= metrics.revenue  # winners value >= payment
    stats = metrics.by_strategy["truthful"]
    assert stats.agents == 10
    assert stats.utility > 0
    assert metrics.revenue_per_round > 0
    assert metrics.table_rows()[0][0] == "truthful"


def test_simulation_is_deterministic():
    config = dict(
        mechanism=VickreyAuction(k=1), n_rounds=10, n_buyers=5, seed=7
    )
    a = simulate_mechanism(SimulationConfig(**config))
    b = simulate_mechanism(SimulationConfig(**config))
    assert a.revenue == b.revenue and a.welfare == b.welfare


def test_shading_hurts_revenue_under_posted_price():
    base = dict(
        n_rounds=40, n_buyers=12, value_sampler=uniform_values(0, 100),
        seed=3,
    )
    honest = simulate_mechanism(SimulationConfig(
        mechanism=PostedPriceMechanism(price=50.0),
        strategy_mix={"truthful": 1.0}, **base,
    ))
    shaded = simulate_mechanism(SimulationConfig(
        mechanism=PostedPriceMechanism(price=50.0),
        strategy_mix={"shading": 1.0}, **base,
    ))
    assert shaded.revenue < honest.revenue


def test_simulation_validation():
    with pytest.raises(SimulationError):
        simulate_mechanism(
            SimulationConfig(mechanism=VickreyAuction(), n_rounds=0)
        )
    with pytest.raises(SimulationError):
        simulate_mechanism(
            SimulationConfig(mechanism=VickreyAuction(), n_buyers=0)
        )


def test_ic_regret_zero_for_vickrey_positive_for_gsp():
    from repro.mechanisms import GSPAuction

    sampler = uniform_values(0, 100)
    vickrey_regret = empirical_ic_regret(
        VickreyAuction(k=1), Shading(0.7), sampler, n_trials=200, seed=2
    )
    assert vickrey_regret <= 1e-9  # IC: deviation never helps
    # two rivals, two slots: dropping to slot 2 keeps most of the clicks
    # while slashing the payment — the classic GSP manipulation
    gsp_regret = empirical_ic_regret(
        GSPAuction(slot_weights=(1.0, 0.8)), Shading(0.6), sampler,
        n_rivals=2, n_trials=400, seed=2,
    )
    assert gsp_regret > 0  # shading pays under GSP


def test_ic_regret_validation():
    with pytest.raises(SimulationError):
        empirical_ic_regret(
            VickreyAuction(), Shading(), uniform_values(0, 1), n_trials=0
        )


def test_compare_designs_grid():
    grid = compare_designs(
        [VickreyAuction(k=1), RSOPAuction(seed=0)],
        {
            "all_truthful": {"truthful": 1.0},
            "mixed": {"truthful": 0.5, "shading": 0.5},
        },
        uniform_values(0, 100),
        n_rounds=10,
        n_buyers=8,
        seed=0,
    )
    assert set(grid) == {
        ("vickrey", "all_truthful"), ("vickrey", "mixed"),
        ("rsop", "all_truthful"), ("rsop", "mixed"),
    }
    assert all(m.rounds == 10 for m in grid.values())


# -- metrics ----------------------------------------------------------------------


def test_gini():
    assert gini([1.0, 1.0, 1.0]) == pytest.approx(0.0)
    unequal = gini([0.0, 0.0, 0.0, 100.0])
    assert unequal > 0.7
    assert gini([0.0, 0.0]) == 0.0
    with pytest.raises(SimulationError):
        gini([])
    with pytest.raises(SimulationError):
        gini([-1.0])


# -- collusion -------------------------------------------------------------------


def test_collusion_hurts_vickrey_revenue():
    result = simulate_collusion(
        VickreyAuction(k=1),
        uniform_values(0, 100),
        n_buyers=6,
        coalition_size=3,
        n_rounds=300,
        seed=4,
    )
    assert result.revenue_loss > 0  # suppression deflates second price
    assert result.coalition_gain > 0  # and the coalition profits
    assert 0 < result.revenue_loss_fraction < 1


def test_collusion_posted_price_is_resistant():
    result = simulate_collusion(
        PostedPriceMechanism(price=50.0),
        uniform_values(0, 100),
        n_buyers=6,
        coalition_size=3,
        n_rounds=200,
        seed=4,
    )
    # suppressed members lose their own purchases; the price never moves
    assert result.collusive_revenue <= result.honest_revenue
    assert result.coalition_gain <= 1e-9


def test_collusion_validation():
    with pytest.raises(SimulationError):
        simulate_collusion(
            VickreyAuction(), uniform_values(0, 1), n_buyers=3,
            coalition_size=5,
        )
