"""Join-graph-aware DoD planning: beam search vs. the exhaustive oracle.

The component-pruned best-first planner (the default) must return exactly
the same ranked mashups — same scores, same join shapes — as the old
``itertools.product`` sweep it replaces, which stays available behind
``exhaustive=True`` as the reference oracle.  Mirroring the lifecycle-replay
style of ``tests/test_discovery_incremental.py``, randomized corpora are
churned through register/update/remove deltas and both planners are compared
after every step, while doing strictly less scoring work on the beam side.
"""

import random

import pytest

from repro.discovery import DiscoveryEngine, IndexBuilder, MetadataEngine
from repro.errors import IntegrationError, SimulationError
from repro.integration import DoDEngine, MashupRequest
from repro.mashup import MashupBuilder
from repro.relation import Column, Relation

ATTRS = ["alpha", "beta", "gamma"]
NAMES = ["ds_a", "ds_b", "ds_c", "ds_d", "ds_e", "ds_f", "ds_g"]
#: entity_id ranges per cluster never overlap, and semantic tags are
#: cluster-scoped, so the relationship graph splits into components
CLUSTER_STARTS = ([0, 12, 30], [5000, 5015])


def make_relation(name: str, rng: random.Random) -> Relation:
    cluster = rng.randrange(len(CLUSTER_STARTS))
    start = rng.choice(CLUSTER_STARTS[cluster])
    n = rng.randrange(18, 36)
    tag = f"entity{cluster}" if rng.random() < 0.4 else None
    columns = [Column("entity_id", "int", tag)]
    for attr in sorted(rng.sample(ATTRS, k=rng.randrange(1, 3))):
        # occasional near-miss names give the planner score diversity
        column = attr + "2" if rng.random() < 0.3 else attr
        columns.append(Column(column, "float"))
    rows = [
        (start + i,
         *[round(rng.random() * 50, 3) for _ in range(len(columns) - 1)])
        for i in range(n)
    ]
    return Relation(name, columns, rows)


def make_request(rng: random.Random) -> MashupRequest:
    wanted = sorted(rng.sample(ATTRS, k=rng.randrange(1, 3)))
    return MashupRequest(attributes=wanted, key="entity_id")


def canonical_mashups(dod: DoDEngine, request: MashupRequest) -> list[tuple]:
    mashups = dod.build_mashups(request)
    return [
        (m.plan.describe(), sorted(m.matched.items()), m.missing,
         len(m.relation))
        for m in mashups
    ]


def planner_pair(engine: MetadataEngine):
    """Beam planner and exhaustive oracle over one shared discovery stack."""
    index = IndexBuilder(engine)
    discovery = DiscoveryEngine(engine, index)
    beam = DoDEngine(engine, index, discovery)
    oracle = DoDEngine(engine, index, discovery, exhaustive=True)
    return beam, oracle


def assert_planners_agree(beam, oracle, request) -> None:
    got = canonical_mashups(beam, request)
    want = canonical_mashups(oracle, request)
    assert got == want
    assert (
        beam.last_stats.assignments_scored
        <= oracle.last_stats.assignments_scored
    )


@pytest.mark.parametrize("seed", [3, 17, 59])
def test_beam_matches_oracle_over_random_lifecycles(seed):
    rng = random.Random(seed)
    engine = MetadataEngine(num_perm=16)
    beam, oracle = planner_pair(engine)
    live: set[str] = set()
    for _ in range(25):
        roll = rng.random()
        if not live or roll < 0.5:
            name = rng.choice(NAMES)
            engine.register(make_relation(name, rng))
            live.add(name)
        elif roll < 0.8:
            engine.register(make_relation(rng.choice(sorted(live)), rng))
        else:
            name = rng.choice(sorted(live))
            engine.remove(name)
            live.discard(name)
        assert_planners_agree(beam, oracle, make_request(rng))


def test_component_pruning_counts_disconnected_assignments():
    """With attribute coverage split across two disconnected clusters, the
    beam planner must prune cross-cluster assignments before scoring."""
    engine = MetadataEngine(num_perm=16)
    beam, oracle = planner_pair(engine)
    for cluster, start in enumerate((0, 9000)):
        for j in range(2):
            rows = [
                (start + i, float(start + i) + 0.5, float(start + i) * 2.0)
                for i in range(25)
            ]
            engine.register(Relation(
                f"c{cluster}_{j}",
                [Column("entity_id", "int"), Column("alpha", "float"),
                 Column("beta", "float")],
                rows,
            ))
    assert len(beam.index.components()) == 2
    request = MashupRequest(attributes=["alpha", "beta"], key="entity_id")
    assert_planners_agree(beam, oracle, request)
    assert beam.last_stats.pruned_disconnected > 0


def test_equal_score_plans_are_deterministic():
    """Tie-rich corpus: identical twin datasets force equal-score plans;
    rebuilding the whole stack must reproduce the exact plan order."""

    def build():
        engine = MetadataEngine(num_perm=16)
        beam, oracle = planner_pair(engine)
        rows = [(i, float(i), float(2 * i)) for i in range(30)]
        columns = [Column("entity_id", "int"), Column("alpha", "float"),
                   Column("beta", "float")]
        for name in ("twin_b", "twin_a", "twin_c"):
            engine.register(Relation(name, columns, rows))
        request = MashupRequest(
            attributes=["alpha", "beta"], key="entity_id", max_results=5
        )
        return (
            canonical_mashups(beam, request),
            canonical_mashups(oracle, request),
        )

    first_beam, first_oracle = build()
    second_beam, second_oracle = build()
    assert first_beam == second_beam == first_oracle == second_oracle
    # equal-score ties resolve toward the lexicographically first dataset
    assert "twin_a" in first_beam[0][0].splitlines()[0]


def test_composite_key_join_step():
    """Two datasets sharing two key-like columns join on the composite
    predicate, and the plan carries the multi-column step."""
    n = 30
    sales = Relation(
        "sales",
        [Column("order_key", "int"), Column("batch_code", "str"),
         Column("amount", "float")],
        [(i, f"b{i}", float(i) * 1.5) for i in range(n)],
    )
    returns = Relation(
        "returns",
        [Column("order_key", "int"), Column("batch_code", "str"),
         Column("reason", "str")],
        [(i, f"b{i}", "damaged" if i % 2 else "late") for i in range(n)],
    )
    builder = MashupBuilder()
    builder.add_dataset(sales)
    builder.add_dataset(returns)
    mashups = builder.build(
        MashupRequest(attributes=["amount", "reason"], key="order_key")
    )
    assert mashups
    joined = next(m for m in mashups if m.plan.joins)
    step = joined.plan.joins[0]
    assert step.extra_on  # composite predicate: more than one column pair
    assert {frozenset(p) for p in step.pairs} == {
        frozenset(("sales__order_key", "returns__order_key")),
        frozenset(("sales__batch_code", "returns__batch_code")),
    }
    assert " and " in step.describe()
    assert len(joined.relation) == n


def test_misaligned_composite_falls_back_to_primary_pair():
    """A second key-like column pair whose value sets overlap but whose
    rows are misaligned makes the composite AND-join empty; the planner
    must fall back to the single-column join instead of losing the mashup."""
    n = 30
    left = Relation(
        "left",
        [Column("id", "int"), Column("code", "int"), Column("price", "float")],
        [(i, i, float(i)) for i in range(n)],
    )
    right = Relation(
        "right",
        # same code value *set*, shifted one row: set overlap 1.0, but the
        # conjunction id=id AND code=code matches nothing
        [Column("id", "int"), Column("code", "int"), Column("qty", "float")],
        [(i, (i + 1) % n, float(i) * 2.0) for i in range(n)],
    )
    for exhaustive in (False, True):
        builder = MashupBuilder(exhaustive=exhaustive)
        builder.add_dataset(left)
        builder.add_dataset(right)
        mashups = builder.build(
            MashupRequest(attributes=["price", "qty"], key="id")
        )
        assert mashups, "misaligned composite must not lose the mashup"
        joined = next(m for m in mashups if m.plan.joins)
        assert len(joined.relation) == n
        # the delivered plan degraded to single-column join steps
        assert all(not step.extra_on for step in joined.plan.joins)


def test_builder_and_fullstack_expose_planner_choice():
    from repro.datagen import make_classification_world
    from repro.market import internal_market
    from repro.simulator import simulate_market_deployment, uniform_values

    exhaustive = MashupBuilder(exhaustive=True)
    assert exhaustive.dod.exhaustive
    with pytest.raises(IntegrationError):
        MashupBuilder(beam_width=0)

    world = make_classification_world(
        n_entities=40, feature_weights=(1.0, 1.0),
        dataset_features=((0,), (1,)), seed=11,
    )
    results = {}
    for planner in ("beam", "exhaustive"):
        result = simulate_market_deployment(
            internal_market(),
            world.datasets,
            wanted_attributes=["f0", "f1"],
            value_sampler=uniform_values(10, 100),
            strategy_mix={"truthful": 1.0},
            n_buyers=3,
            n_rounds=2,
            seed=5,
            planner=planner,
        )
        results[planner] = (
            result.revenue, result.transactions, result.welfare
        )
    # planner choice must not change market outcomes, only planning work
    assert results["beam"] == results["exhaustive"]
    with pytest.raises(SimulationError):
        simulate_market_deployment(
            internal_market(),
            world.datasets,
            wanted_attributes=["f0"],
            value_sampler=uniform_values(10, 100),
            strategy_mix={"truthful": 1.0},
            planner="dfs",
        )


def test_beam_width_caps_frontier_but_keeps_best_plan():
    """A narrow beam may lose tail plans but must keep the clear winner."""
    engine = MetadataEngine(num_perm=16)
    index = IndexBuilder(engine)
    discovery = DiscoveryEngine(engine, index)
    rows = [(i, float(i), float(i) * 3.0) for i in range(25)]
    columns = [Column("entity_id", "int"), Column("alpha", "float"),
               Column("beta", "float")]
    for name in ("one", "two", "three"):
        engine.register(Relation(name, columns, rows))
    narrow = DoDEngine(engine, index, discovery, beam_width=2)
    exact = DoDEngine(engine, index, discovery)
    request = MashupRequest(attributes=["alpha", "beta"], key="entity_id")
    narrow_plans = canonical_mashups(narrow, request)
    exact_plans = canonical_mashups(exact, request)
    assert narrow_plans
    assert narrow_plans[0] == exact_plans[0]
