"""End-to-end tests of the Arbiter (Fig. 2's full pipeline)."""

import numpy as np
import pytest

from repro.datagen import make_classification_world
from repro.errors import MarketError
from repro.market import (
    Arbiter,
    BuyerPlatform,
    License,
    LicenseKind,
    SellerPlatform,
    external_market,
    internal_market,
)
from repro.wtp import PriceCurve, WTPFunction


@pytest.fixture
def world():
    return make_classification_world(
        n_entities=300,
        feature_weights=(2.0, 1.5, 0.0, 2.5),
        dataset_features=((0, 1), (2, 3)),
        seed=5,
    )


def build_market(world, design=None, reserve_0=0.0, license_0=None):
    arbiter = Arbiter(design or external_market())
    s0 = SellerPlatform("alice")
    s0.package(world.datasets[0], reserve_price=reserve_0, license=license_0)
    s1 = SellerPlatform("bob")
    s1.package(world.datasets[1])
    s0.share_all(arbiter)
    s1.share_all(arbiter)
    return arbiter, s0, s1


def classification_wtp(buyer: BuyerPlatform, world, steps=((0.7, 100.0),)):
    return buyer.classification_wtp(
        labels=world.label_relation,
        features=["f0", "f1", "f3"],
        price_steps=steps,
    )


def test_full_upfront_transaction(world):
    arbiter, s0, s1 = build_market(world)
    buyer = BuyerPlatform("b1")
    arbiter.register_participant("b1", funding=500.0)
    arbiter.attach_buyer_platform(buyer)
    buyer.submit(arbiter, classification_wtp(buyer, world))
    result = arbiter.run_round()

    assert result.transactions == 1
    delivery = result.deliveries[0]
    assert delivery.satisfaction >= 0.7
    assert delivery.bid == 100.0
    # RSOP with one bidder prices at zero: revenue comes from competition
    assert delivery.price_paid >= 0.0
    assert set(delivery.mashup.plan.sources()) == {"seller_0", "seller_1"}
    # buyer platform received the mashup with a transparent plan
    assert buyer.latest.plan_description.startswith("base:")
    assert {"f0", "f1", "f3"} <= set(buyer.latest.relation.columns)
    # ledger conserves, audit verifies
    assert arbiter.ledger.conservation_check()
    assert arbiter.audit.verify()


def test_competition_generates_revenue(world):
    arbiter, *_ = build_market(world)
    buyers = []
    for i, price in enumerate((100.0, 90.0, 80.0, 60.0)):
        b = BuyerPlatform(f"b{i}")
        arbiter.register_participant(f"b{i}", funding=500.0)
        arbiter.attach_buyer_platform(b)
        b.submit(arbiter, classification_wtp(b, world, steps=((0.7, price),)))
        buyers.append(b)
    result = arbiter.run_round()
    # all four bid on the same mashup good; RSOP prices from the other half
    assert result.transactions >= 1
    assert result.revenue > 0
    assert any("outbid" in r.reason for r in result.rejections)
    # sellers got paid
    assert (
        arbiter.ledger.balance("alice") + arbiter.ledger.balance("bob") > 0
    )
    # lineage lets sellers audit their sales
    alice_platform_revenue = arbiter.lineage.revenue_of("seller_0")
    assert alice_platform_revenue > 0


def test_rejection_when_satisfaction_below_threshold(world):
    arbiter, *_ = build_market(world)
    buyer = BuyerPlatform("b1")
    arbiter.register_participant("b1", funding=500.0)
    # demands 99.9% accuracy: unreachable
    buyer.submit(
        arbiter, classification_wtp(buyer, world, steps=((0.999, 100.0),))
    )
    result = arbiter.run_round()
    assert result.transactions == 0
    assert any("threshold" in r.reason for r in result.rejections)


def test_rejection_when_nothing_matches(world):
    arbiter, *_ = build_market(world)
    buyer = BuyerPlatform("b1")
    arbiter.register_participant("b1", funding=10.0)
    wtp = buyer.completeness_wtp(
        wanted_keys=[1, 2], attributes=["nonexistent_attr_xyz"],
        price_steps=((0.5, 5.0),),
    )
    buyer.submit(arbiter, wtp)
    result = arbiter.run_round()
    assert result.transactions == 0
    # the gap becomes a negotiation request (Section 4.1)
    open_reqs = arbiter.negotiation.open_requests()
    assert any(r.attribute == "nonexistent_attr_xyz" for r in open_reqs)


def test_reserve_price_blocks_low_value_sale(world):
    arbiter, *_ = build_market(world, reserve_0=10_000.0)
    buyer = BuyerPlatform("b1")
    arbiter.register_participant("b1", funding=500.0)
    buyer.submit(arbiter, classification_wtp(buyer, world))
    result = arbiter.run_round()
    assert result.transactions == 0
    assert any("reserve" in r.reason for r in result.rejections)


def test_exclusive_license_enforced_across_buyers(world):
    license = License(LicenseKind.EXCLUSIVE, exclusivity_tax_rate=0.0)
    arbiter, *_ = build_market(world, license_0=license)
    for name in ("b1", "b2"):
        b = BuyerPlatform(name)
        arbiter.register_participant(name, funding=500.0)
        b.submit(arbiter, classification_wtp(b, world))
    result = arbiter.run_round()
    sellers_of_sold = [
        d for d in result.deliveries
        if "seller_0" in d.mashup.plan.sources()
    ]
    # at most one buyer may hold the exclusively licensed dataset
    assert len({d.buyer for d in sellers_of_sold}) <= 1
    blocked = [r for r in result.rejections if "exclusively" in r.reason]
    if len(sellers_of_sold) == 1 and result.transactions < 2:
        assert blocked or result.transactions == 1


def test_same_round_exclusive_contention_blocks_second_winner(world):
    """Two winners of one cleared group contend for one exclusivity slot:
    the first commits, the second is blocked at (deferred) settlement."""
    license = License(LicenseKind.EXCLUSIVE, exclusivity_tax_rate=0.0)
    arbiter, *_ = build_market(
        world, design=internal_market(), license_0=license
    )
    for name in ("b1", "b2"):
        b = BuyerPlatform(name)
        arbiter.register_participant(name)
        b.submit(arbiter, classification_wtp(b, world, steps=((0.7, 10.0),)))
    result = arbiter.run_round()
    # posted price 0 makes both buyers winners of the same good; only one
    # may hold the exclusively licensed dataset
    assert result.transactions == 1
    assert any("exclusively licensed" in r.reason for r in result.rejections)
    assert arbiter.audit.records("sale_blocked")
    assert arbiter.ledger.conservation_check()


def test_same_round_transfer_contention_blocks_second_winner(world):
    """TRANSFER licenses also consume their slot at commit: the second
    same-group winner must be blocked, not settled and then rejected."""
    license = License(LicenseKind.TRANSFER)
    arbiter, *_ = build_market(
        world, design=internal_market(), license_0=license
    )
    for name in ("b1", "b2"):
        b = BuyerPlatform(name)
        arbiter.register_participant(name)
        b.submit(arbiter, classification_wtp(b, world, steps=((0.7, 10.0),)))
    result = arbiter.run_round()
    assert result.transactions == 1
    assert any("transferred" in r.reason for r in result.rejections)
    assert arbiter.ledger.conservation_check()


def test_settlement_crash_contained_to_its_winner(world):
    """Shapley settlement re-runs buyer task code on partial mashups; a
    task that crashes there must sink only its own sale, not the round."""

    class PartialHostileTask:
        required_attributes = ["f0", "f1", "f3"]

        def evaluate(self, relation):
            if "f3" not in relation.schema or "f0" not in relation.schema:
                raise ValueError("hostile: crashes on partial mashups")
            return 0.9

    design = internal_market()
    design.revenue_sharing = "shapley"
    arbiter, *_ = build_market(world, design=design)
    arbiter.register_participant("hostile")
    arbiter.submit_wtp(
        WTPFunction(
            buyer="hostile",
            task=PartialHostileTask(),
            curve=PriceCurve.single(0.5, 10.0),
        )
    )
    honest = BuyerPlatform("honest")
    arbiter.register_participant("honest")
    honest.submit(arbiter, classification_wtp(honest, world,
                                              steps=((0.7, 10.0),)))
    result = arbiter.run_round()  # must not raise
    assert any(d.buyer == "honest" for d in result.deliveries)
    assert not any(d.buyer == "hostile" for d in result.deliveries)
    assert any(r.buyer == "hostile" and "settlement" in r.reason
               for r in result.rejections)
    assert arbiter.audit.records("settlement_crashed")
    assert arbiter.ledger.conservation_check()


def test_unregistered_buyer_rejected(world):
    arbiter, *_ = build_market(world)
    buyer = BuyerPlatform("ghost")
    with pytest.raises(MarketError, match="not registered"):
        buyer.submit(arbiter, classification_wtp(buyer, world))


def test_internal_market_mints_points(world):
    arbiter, *_ = build_market(world, design=internal_market())
    buyer = BuyerPlatform("team_analytics")
    arbiter.register_participant("team_analytics")
    buyer.submit(arbiter, classification_wtp(buyer, world))
    result = arbiter.run_round()
    assert result.transactions == 1
    # posted price 0: no money moved from the buyer...
    assert result.deliveries[0].price_paid == 0.0
    # ...but sellers earned minted bonus points
    assert arbiter.ledger.balance("alice") > internal_market().participation_grant
    assert arbiter.ledger.unit == "points"


def test_expost_flow_settles_with_report(world):
    arbiter, *_ = build_market(world)
    buyer = BuyerPlatform("explorer")
    arbiter.register_participant("explorer", funding=300.0)
    arbiter.attach_buyer_platform(buyer)
    wtp = buyer.exploration_wtp(
        attributes=["f0", "f1"], max_budget=200.0, key="entity_id"
    )
    buyer.submit(arbiter, wtp)
    result = arbiter.run_round()
    assert len(result.expost_deliveries) == 1
    assert result.transactions == 0  # nothing paid yet
    tx = result.expost_deliveries[0].transaction_id
    # buyer uses the data, realizes value 80, reports truthfully
    buyer.report_expost_value(arbiter, tx, 80.0)
    rng = np.random.default_rng(0)
    settled = arbiter.settle_expost(rng, true_values={tx: 80.0})
    assert len(settled) == 1
    assert settled[0].price_paid == pytest.approx(0.5 * 80.0)  # alpha=0.5
    assert arbiter.ledger.balance("explorer") == pytest.approx(300.0 - 40.0)
    assert arbiter.ledger.conservation_check()
    # double settlement is refused
    with pytest.raises(MarketError):
        buyer.report_expost_value(arbiter, tx, 10.0)


def test_expost_underreporting_punished_under_audit(world):
    arbiter, *_ = build_market(world)
    buyer = BuyerPlatform("cheater")
    arbiter.register_participant("cheater", funding=300.0)
    wtp = buyer.exploration_wtp(["f0"], max_budget=200.0, key="entity_id")
    buyer.submit(arbiter, wtp)
    result = arbiter.run_round()
    tx = result.expost_deliveries[0].transaction_id
    buyer.report_expost_value(arbiter, tx, 0.0)  # lies: true value is 80
    # force an audit by settling until the coin lands (audit_probability=.3)
    rng = np.random.default_rng(3)  # first draw < .3 -> audited
    settled = arbiter.settle_expost(rng, true_values={tx: 80.0})
    charge = settled[0].price_paid
    truthful_payment = 0.5 * 80.0
    if charge > 0:  # audited: penalty exceeds honest payment
        assert charge > truthful_payment
    assert arbiter.audit.verify()


def test_dataset_update_reaches_market(world):
    """Sellers can update datasets; the market uses the newest version."""
    arbiter, s0, _s1 = build_market(world)
    updated = world.datasets[0].map_column("f0", lambda v: v).renamed(
        "seller_0"
    ).with_provenance_root("seller_0")
    arbiter.builder.add_dataset(updated, owner="alice")
    assert arbiter.builder.metadata.snapshot("seller_0").version >= 1


def test_audit_log_covers_market_lifecycle(world):
    arbiter, *_ = build_market(world)
    buyer = BuyerPlatform("b1")
    arbiter.register_participant("b1", funding=500.0)
    buyer.submit(arbiter, classification_wtp(buyer, world))
    arbiter.run_round()
    kinds = {r.kind for r in arbiter.audit.records()}
    assert {"market_created", "participant_registered", "dataset_accepted",
            "wtp_submitted"} <= kinds
    assert arbiter.audit.verify()
