"""MarketService: single-writer delta queue + snapshot-consistent reads.

The contract: mutations drain through one background worker in submission
order (tickets resolve with the façade's results, or re-raise its typed
errors in the caller's thread); reads hold the read side of a
writer-preferring RW lock, so every result observes a complete graph
version, and a ``pinned()`` block answers all of its reads ``as_of`` the
same version even while writers churn.
"""

from __future__ import annotations

import threading

import pytest

from repro import DataMarket
from repro.errors import DuplicateDatasetError
from repro.platform import MarketService, ServiceError
from repro.relation import Column, Relation


def rel(name: str, offset: int = 0, n: int = 25) -> Relation:
    return Relation(
        name,
        [Column("key", "int"), Column(f"{name}_val", "float")],
        [(k, float(k + offset)) for k in range(n)],
    )


@pytest.fixture
def service():
    svc = MarketService(DataMarket())
    yield svc
    svc.close()


# ---------------------------------------------------------------------------
# tickets and the single writer
# ---------------------------------------------------------------------------

def test_register_ticket_resolves_with_facade_result(service):
    ticket = service.register_dataset(rel("base"), "acme", reserve_price=3.0)
    result = ticket.result(10)
    assert ticket.done
    assert result.dataset == "base"
    assert result.created is True
    assert result.reserve_price == 3.0
    assert service.market.datasets == ["base"]


def test_ticket_reraises_facade_errors_in_caller_thread(service):
    service.register_dataset(rel("dup"), "acme").result(10)
    bad = service.register_dataset(rel("dup"), "acme")
    with pytest.raises(DuplicateDatasetError):
        bad.result(10)
    assert service.status()["failed"] == 1
    # the worker survives a failed op and keeps draining
    assert service.register_dataset(rel("next"), "acme").result(10).created


def test_writes_apply_in_submission_order(service):
    tickets = [
        service.register_dataset(rel(f"ds{i}"), "acme") for i in range(6)
    ]
    service.flush()
    versions = [t.result(0).as_of for t in tickets]
    assert versions == sorted(versions)
    times = [
        service.market.metadata.snapshot(f"ds{i}").logical_time
        for i in range(6)
    ]
    assert times == sorted(times)


def test_flush_is_a_barrier(service):
    for i in range(5):
        service.register_dataset(rel(f"ds{i}"), "acme")
    service.flush()
    assert service.status()["pending"] == 0
    assert len(service.market.datasets) == 5


def test_submit_generic_mutation(service):
    service.register_dataset(rel("gone"), "acme").result(10)
    ticket = service.submit(
        lambda: service.market.retire_dataset("gone"), label="retire:gone"
    )
    assert ticket.result(10).dataset == "gone"
    assert service.market.datasets == []


# ---------------------------------------------------------------------------
# snapshot reads
# ---------------------------------------------------------------------------

def test_pinned_block_answers_one_version(service):
    service.register_dataset(rel("base"), "acme").result(10)
    with service.pinned() as view:
        s = view.search(["base_val"])
        p = view.plan(["base_val"])
    assert s.as_of == p.as_of == view.as_of


def test_pinned_readers_see_consistent_versions_under_churn(service):
    service.register_dataset(rel("base"), "acme").result(10)
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer():
        i = 0
        try:
            while not stop.is_set() and i < 12:
                service.register_dataset(rel(f"w{i}"), "acme").result(15)
                i += 1
        except BaseException as exc:
            errors.append(exc)

    def reader():
        try:
            for _ in range(25):
                with service.pinned() as view:
                    s = view.search(["base_val"])
                    p = view.plan(["base_val"])
                    assert s.as_of == p.as_of == view.as_of
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    assert errors == []
    assert service.status()["failed"] == 0


def test_unpinned_reads_hold_the_read_lock_too(service):
    service.register_dataset(rel("base"), "acme").result(10)
    result = service.search(["base_val"])
    assert result.as_of == service.market.graph_version


# ---------------------------------------------------------------------------
# lifecycle and store-backed reads
# ---------------------------------------------------------------------------

def test_close_is_idempotent_and_rejects_new_writes(service):
    service.register_dataset(rel("base"), "acme").result(10)
    service.close()
    service.close()
    with pytest.raises(ServiceError):
        service.register_dataset(rel("late"), "acme")
    assert service.status()["closed"] is True


def test_store_reads_require_a_store(service):
    with pytest.raises(ServiceError):
        service.list_datasets()
    with pytest.raises(ServiceError):
        service.search_text("anything")


def test_store_backed_service_lists_and_searches(tmp_path):
    market = DataMarket(store=str(tmp_path / "m.db"))
    with MarketService(market) as svc:
        for i in range(3):
            svc.register_dataset(rel(f"ds{i}"), "acme").result(10)
        page, cursor = svc.list_datasets(limit=2)
        assert [r["dataset"] for r in page] == ["ds0", "ds1"]
        page2, cursor2 = svc.list_datasets(limit=2, cursor=cursor)
        assert [r["dataset"] for r in page2] == ["ds2"]
        assert cursor2 is None
        if market.store.has_fts:
            assert {h["dataset"] for h in svc.search_text("ds1")} == {"ds1"}


def test_close_persists_plan_cache_for_warm_restart(tmp_path):
    path = str(tmp_path / "m.db")
    market = DataMarket(store=path)
    with MarketService(market) as svc:
        svc.register_dataset(rel("base"), "acme").result(10)
        assert svc.plan(["base_val"]).cached is False
    # context exit closed the service, which persisted the plan cache
    replayed = DataMarket(store=path)
    assert replayed.plan(["base_val"]).cached is True
