"""Façade coverage for the market's side desks: negotiation (4.1),
disputes (4.4), data trusts (4.5) and insurance (7.1) — all through typed
``DataMarket`` methods returning frozen, ``as_of``-stamped results — plus
the lazy ``PlanResult`` → ``materialize`` flow of the redesigned API."""

import dataclasses

import numpy as np
import pytest

from repro import DataMarket, internal_market
from repro.errors import (
    DatasetNotFoundError,
    DuplicateDatasetError,
    InvalidRequestError,
    NegotiationError,
    UnknownParticipantError,
)
from repro.integration import AffineMap, TransformHint
from repro.relation import Column, Relation

N_KEYS = 30


def make_dataset(name, attrs, seed=0):
    rng = np.random.default_rng(seed)
    cols = [Column("entity_id", "int", "entity")]
    cols += [Column(a, "float") for a in attrs]
    rows = [
        (k, *(float(v) for v in rng.normal(size=len(attrs))))
        for k in range(N_KEYS)
    ]
    return Relation(name, cols, rows)


# ---------------------------------------------------------------------------
# lazy plans through the façade
# ---------------------------------------------------------------------------


def test_plan_result_is_lazy_until_materialized():
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    market.register_dataset(
        make_dataset("ds_b", ["beta"], seed=1), seller="s1"
    )
    result = market.plan(["alpha", "beta"], key="entity_id")
    assert len(result) >= 1
    assert all(not m.materialized for m in result.mashups)
    assert len(result.trees) == len(result.mashups)
    relations = market.materialize(result)
    assert all(m.materialized for m in result.mashups)
    assert relations[0] is result.best.relation
    # engine choice is a pure performance knob: bit-identical output
    from repro.relation import IterationEngine

    oracle = IterationEngine().execute(result.best.tree)
    assert oracle.rows == relations[0].rows
    assert oracle.provenance == relations[0].provenance


def test_exec_engine_knob_threads_through():
    market = DataMarket(internal_market(), exec_engine="iteration")
    assert market.exec_engine == "iteration"
    assert market.planner.exec_engine == "iteration"
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    result = market.plan(["alpha"], key="entity_id")
    assert market.materialize(result)[0].columns == ("entity_id", "alpha")


# ---------------------------------------------------------------------------
# negotiation
# ---------------------------------------------------------------------------


def test_negotiation_flow_through_facade():
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    market.plan(["alpha", "mystery"], key="entity_id")
    report = market.publish_gaps()
    assert "mystery" in report.attributes
    assert report.as_of == market.graph_version
    request = next(
        r for r in report.requests if r.attribute == "mystery"
    )
    assert request.open
    with pytest.raises(dataclasses.FrozenInstanceError):
        request.bounty = 99.0

    # a seller answers with a dataset carrying the missing attribute:
    # the request closes and the dataset goes live in one step
    ds = make_dataset("ds_m", ["mystery"], seed=7)
    view = market.respond_with_dataset(request.request_id, "s9", ds)
    assert view.status == "fulfilled"
    assert view.fulfilled_by == "s9"
    assert "ds_m" in market.datasets
    assert market.open_info_requests().attributes == ()
    # the fulfilled request cannot be answered twice
    with pytest.raises(NegotiationError):
        market.respond_with_dataset(request.request_id, "s9", ds)


def test_negotiation_hint_joins_planner_hints():
    market = DataMarket(internal_market())
    market.register_dataset(
        make_dataset("ds_a", ["alpha", "price_usd"]), seller="s0"
    )
    market.plan(["alpha", "kilometrage"], key="entity_id")
    report = market.publish_gaps()
    request = next(
        r for r in report.requests if r.attribute == "kilometrage"
    )
    hint = TransformHint(
        dataset="ds_a", column="price_usd",
        target_attribute="kilometrage", mapping=AffineMap(0.9, 0.0),
    )
    view = market.respond_with_hint(request.request_id, "s0", hint)
    assert view.status == "fulfilled"
    # the hint is now standing: the same request plans successfully
    result = market.plan(["alpha", "kilometrage"], key="entity_id")
    assert result.best is not None
    assert "kilometrage" in market.materialize(result)[0].columns


def test_standing_hints_are_content_hashed_into_cache_key():
    """Plan-cache identity includes hint *content*: a new hint changes
    the key, but an equal-content hint (fresh instances, unhashable
    DictionaryMap payload included) still hits."""
    from repro.integration import DictionaryMap

    def hint():
        return TransformHint(
            dataset="ds_a", column="price_usd",
            target_attribute="kilometrage",
            mapping=DictionaryMap({1.0: 2.0, 3.0: 4.0}),
        )

    market = DataMarket(internal_market())
    market.register_dataset(
        make_dataset("ds_a", ["alpha", "price_usd"]), seller="s0"
    )
    market.plan(["alpha"], key="entity_id")
    market.plan(["alpha"], key="entity_id")
    assert market.plan_cache_stats.hits == 1
    assert market.plan_cache_stats.misses == 1

    market.builder.add_hint(hint())
    market.plan(["alpha"], key="entity_id")  # hint set changed: miss
    assert market.plan_cache_stats.misses == 2

    # equal-content hints under fresh object identities still hit
    market.builder._hints[:] = [hint()]
    market.plan(["alpha"], key="entity_id")
    assert market.plan_cache_stats.hits == 2
    assert market.plan_cache_stats.uncacheable == 0


# ---------------------------------------------------------------------------
# disputes
# ---------------------------------------------------------------------------


def test_dispute_flow_through_facade():
    market = DataMarket(internal_market())
    market.register_participant("b1", funding=100.0)
    market.ledger.mint("arbiter", 50.0, memo="operating reserve")

    filed = market.file_dispute("b1", "not_delivered", 7, 12.5)
    assert filed.status == "open"
    assert filed.kind == "not_delivered"
    assert [d.dispute_id for d in market.open_disputes()] == [
        filed.dispute_id
    ]

    before = market.ledger.balance("b1")
    resolved = market.resolve_dispute(filed.dispute_id)
    # no transaction 7 on record: the claim is upheld and refunded
    assert resolved.upheld
    assert resolved.refund == pytest.approx(12.5)
    assert market.ledger.balance("b1") == pytest.approx(before + 12.5)
    assert market.open_disputes() == ()


def test_dispute_kind_validation():
    market = DataMarket(internal_market())
    market.register_participant("b1", funding=10.0)
    with pytest.raises(InvalidRequestError, match="unknown dispute kind"):
        market.file_dispute("b1", "vibes", 0, 1.0)


# ---------------------------------------------------------------------------
# insurance
# ---------------------------------------------------------------------------


def test_insurance_flow_through_facade():
    market = DataMarket(internal_market())
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    market.register_participant("holder", funding=100.0)

    quote = market.underwrite_insurance(
        "ds_a", "holder", liability=10.0, breach_probability=0.5,
        loading=0.25,
    )
    assert quote.premium == pytest.approx(0.5 * 10.0 * 1.25)
    assert quote.active

    first = market.collect_premium(quote.policy_id)
    second = market.collect_premium(quote.policy_id)
    assert first.kind == "premium"
    assert second.solvency == pytest.approx(2 * quote.premium)

    payout = market.file_insurance_claim(quote.policy_id)
    assert payout.kind == "claim"
    assert payout.amount == pytest.approx(10.0)
    assert payout.solvency == pytest.approx(2 * quote.premium - 10.0)


def test_insurance_validates_against_market_state():
    market = DataMarket(internal_market())
    market.register_participant("holder", funding=10.0)
    with pytest.raises(DatasetNotFoundError):
        market.underwrite_insurance(
            "ghost", "holder", liability=1.0, breach_probability=0.1
        )
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    with pytest.raises(UnknownParticipantError):
        market.underwrite_insurance(
            "ds_a", "stranger", liability=1.0, breach_probability=0.1
        )


# ---------------------------------------------------------------------------
# data trusts
# ---------------------------------------------------------------------------


def member_rows(start, n, seed):
    rng = np.random.default_rng(seed)
    return [
        (k, float(v))
        for k, v in zip(range(start, start + n), rng.normal(size=n))
    ]


def test_trust_flow_through_facade():
    market = DataMarket(internal_market())
    schema = [Column("entity_id", "int", "entity"),
              Column("steps", "float")]
    created = market.create_trust("wearables", schema)
    assert created.members == ()
    assert market.trusts == ("wearables",)

    market.contribute_to_trust(
        "wearables", "ada",
        Relation("ada_rows", schema, member_rows(0, 10, 1)),
    )
    report = market.contribute_to_trust(
        "wearables", "grace",
        Relation("grace_rows", schema, member_rows(10, 20, 2)),
    )
    assert report.members == ("ada", "grace")
    assert report.rows == 30

    # fund the trust's account up-front so the split can settle
    market.register_participant("wearables", funding=30.0)
    offered = market.offer_trust_dataset("wearables", reserve_price=1.0)
    assert offered.dataset == "wearables"
    assert offered.seller == "wearables"
    assert "wearables" in market.datasets

    # a sale of the pooled data: members are paid by provenance shares
    sold = market.metadata.relation("wearables")
    dist = market.distribute_trust_revenue("wearables", sold, 30.0)
    assert dist.distributed == pytest.approx(30.0)
    # ada contributed 10 of 30 rows, grace 20 of 30
    assert dist.payout_of("ada") == pytest.approx(10.0)
    assert dist.payout_of("grace") == pytest.approx(20.0)
    assert market.ledger.balance("ada") == pytest.approx(10.0)
    assert market.ledger.balance("grace") == pytest.approx(20.0)


def test_trust_name_collisions_rejected():
    market = DataMarket(internal_market())
    market.create_trust("pool", [Column("x", "int")])
    with pytest.raises(DuplicateDatasetError):
        market.create_trust("pool", [Column("x", "int")])
    market.register_dataset(make_dataset("ds_a", ["alpha"]), seller="s0")
    with pytest.raises(DuplicateDatasetError):
        market.create_trust("ds_a", [Column("x", "int")])
    with pytest.raises(DatasetNotFoundError):
        market.contribute_to_trust(
            "ghost", "ada", Relation("r", [Column("x", "int")], [(1,)])
        )
