"""Property-based tests of cross-module invariants (hypothesis).

These pin down the algebraic laws the platform's correctness rests on:
relational-algebra/provenance identities, money conservation, pricing
monotonicity/subadditivity, mechanism rationality, and anonymization
post-conditions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientFundsError, PricingError
from repro.market import Ledger
from repro.mechanisms import Bid, RSOPAuction, VickreyAuction
from repro.pricing import ArbitrageFreePricer, bundle, optimal_posted_price
from repro.privacy import anonymize, is_k_anonymous
from repro.relation import Relation, source_shares, token_shares
from repro.wtp import PriceCurve

# ---------------------------------------------------------------------------
# relation / provenance laws
# ---------------------------------------------------------------------------

rows_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 100)),
    min_size=0,
    max_size=25,
)


def rel_of(name: str, rows) -> Relation:
    return Relation(name, [("k", "int"), ("v", "int")], rows)


@settings(max_examples=60, deadline=None)
@given(left=rows_strategy, right=rows_strategy)
def test_join_cardinality_matches_key_histogram(left, right):
    """|A ⋈ B| = Σ_k count_A(k)·count_B(k) — the hash join is exact."""
    a, b = rel_of("a", left), rel_of("b", right)
    joined = a.join(b, on=[("k", "k")])
    hist_a: dict[int, int] = {}
    hist_b: dict[int, int] = {}
    for k, _v in left:
        hist_a[k] = hist_a.get(k, 0) + 1
    for k, _v in right:
        hist_b[k] = hist_b.get(k, 0) + 1
    expected = sum(hist_a.get(k, 0) * hist_b[k] for k in hist_b)
    assert len(joined) == expected


@settings(max_examples=60, deadline=None)
@given(left=rows_strategy, right=rows_strategy)
def test_join_is_commutative_on_content(left, right):
    a, b = rel_of("a", left), rel_of("b", right)
    ab = a.join(b, on=[("k", "k")]).project(["k"])
    ba = b.join(a, on=[("k", "k")]).project(["k"])
    assert sorted(ab.column("k")) == sorted(ba.column("k"))


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_select_then_union_partitions(rows):
    """σ_p(R) ∪ σ_¬p(R) has exactly R's rows."""
    r = rel_of("r", rows)
    lo = r.select(lambda rec: rec["v"] < 50)
    hi = r.select(lambda rec: rec["v"] >= 50)
    assert lo.union(hi) == r


@settings(max_examples=60, deadline=None)
@given(left=rows_strategy, right=rows_strategy)
def test_provenance_shares_sum_to_row_count(left, right):
    """Every derived row distributes exactly one unit of responsibility."""
    a, b = rel_of("a", left), rel_of("b", right)
    joined = a.join(b, on=[("k", "k")])
    if len(joined) == 0:
        return
    shares = source_shares(joined.provenance)
    assert sum(shares.values()) == pytest.approx(len(joined))
    for expr in joined.provenance:
        assert sum(token_shares(expr).values()) == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_distinct_is_idempotent_and_preserves_sets(rows):
    r = rel_of("r", rows)
    d1 = r.distinct()
    assert d1.distinct() == d1
    assert set(map(tuple, d1.rows)) == set(map(tuple, r.rows))


# ---------------------------------------------------------------------------
# ledger conservation
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["mint", "transfer"]),
            st.integers(0, 3),
            st.integers(0, 3),
            st.floats(0.0, 100.0),
        ),
        max_size=30,
    )
)
def test_ledger_conserves_under_random_operations(ops):
    ledger = Ledger()
    for i in range(4):
        ledger.open_account(f"acc{i}")
    for op, src, dst, amount in ops:
        if op == "mint":
            ledger.mint(f"acc{dst}", amount)
        else:
            try:
                ledger.transfer(f"acc{src}", f"acc{dst}", amount)
            except InsufficientFundsError:
                pass
    assert ledger.conservation_check()
    for i in range(4):
        assert ledger.balance(f"acc{i}") >= -1e-9


# ---------------------------------------------------------------------------
# pricing laws
# ---------------------------------------------------------------------------

catalog_strategy = st.lists(
    st.tuples(
        st.sets(st.sampled_from(["a", "b", "c", "d"]), min_size=1),
        st.floats(0.1, 50.0),
    ),
    min_size=1,
    max_size=6,
)


@settings(max_examples=50, deadline=None)
@given(catalog=catalog_strategy)
def test_closure_pricing_monotone_and_subadditive(catalog):
    bundles = [
        bundle(f"x{i}", atoms, price)
        for i, (atoms, price) in enumerate(catalog)
    ]
    pricer = ArbitrageFreePricer(bundles)
    universe = sorted(pricer.universe)
    # monotone: dropping an atom never raises the price
    try:
        total = pricer.price(universe)
    except PricingError:
        return
    for i in range(len(universe)):
        rest = universe[:i] + universe[i + 1 :]
        if rest:
            assert pricer.price(rest) <= total + 1e-9
    # subadditive: any 2-partition costs at least the whole
    if len(universe) >= 2:
        left, right = universe[:1], universe[1:]
        assert total <= pricer.price(left) + pricer.price(right) + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    valuations=st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=40)
)
def test_optimal_posted_price_is_argmax(valuations):
    result = optimal_posted_price(valuations)
    vals = sorted(valuations)
    for p in vals:
        revenue = p * sum(1 for v in vals if v >= p)
        assert result.revenue >= revenue - 1e-9


# ---------------------------------------------------------------------------
# mechanism rationality
# ---------------------------------------------------------------------------

bids_strategy = st.lists(
    st.floats(0.0, 100.0), min_size=1, max_size=15
)


@settings(max_examples=50, deadline=None)
@given(amounts=bids_strategy, k=st.integers(1, 4))
def test_vickrey_individual_rationality_and_uniform_price(amounts, k):
    bids = [Bid(f"b{i}", a) for i, a in enumerate(amounts)]
    outcome = VickreyAuction(k=k).run(bids)
    payments = {outcome.payment_of(w) for w in outcome.winners}
    assert len(payments) <= 1  # uniform price
    for w in outcome.winners:
        assert outcome.payment_of(w) <= amounts[int(w[1:])] + 1e-9


@settings(max_examples=50, deadline=None)
@given(amounts=bids_strategy, seed=st.integers(0, 5))
def test_rsop_individual_rationality(amounts, seed):
    bids = [Bid(f"b{i}", a) for i, a in enumerate(amounts)]
    outcome = RSOPAuction(seed=seed).run(bids)
    for w in outcome.winners:
        assert outcome.payment_of(w) <= amounts[int(w[1:])] + 1e-9


# ---------------------------------------------------------------------------
# price curves and anonymity
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    thresholds=st.lists(
        st.floats(0.01, 0.99), min_size=1, max_size=5, unique=True
    ),
    s1=st.floats(0.0, 1.0),
    s2=st.floats(0.0, 1.0),
)
def test_price_curve_monotone_in_satisfaction(thresholds, s1, s2):
    steps = tuple(
        (t, 10.0 * (i + 1)) for i, t in enumerate(sorted(thresholds))
    )
    curve = PriceCurve(steps)
    lo, hi = min(s1, s2), max(s1, s2)
    assert curve.price_for(lo) <= curve.price_for(hi)
    assert curve.price_for(1.0) == curve.max_price


@settings(max_examples=25, deadline=None)
@given(
    ages=st.lists(st.integers(18, 90), min_size=4, max_size=30),
    k=st.integers(2, 4),
)
def test_anonymize_postcondition(ages, k):
    rel = Relation(
        "people",
        [("name", "str"), ("age", "int")],
        [(f"p{i}", a) for i, a in enumerate(ages)],
    )
    if k > len(rel):
        return
    out = anonymize(rel, quasi_identifiers=["age"], k=k, suppress=["name"])
    assert "name" not in out.schema
    assert is_k_anonymous(out, ["age"], k)
