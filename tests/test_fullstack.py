"""Tests for the full-stack (DMMS-level) market simulation."""

import pytest

from repro.datagen import make_classification_world
from repro.errors import SimulationError
from repro.market import exclusive_auction_market, internal_market
from repro.simulator import simulate_market_deployment, uniform_values


@pytest.fixture(scope="module")
def datasets():
    world = make_classification_world(
        n_entities=120, feature_weights=(1.0, 1.0),
        dataset_features=((0,), (1,)), seed=61,
    )
    return world.datasets


def run(datasets, design, mix, **kwargs):
    defaults = dict(
        wanted_attributes=["f0", "f1"],
        value_sampler=uniform_values(10, 100),
        strategy_mix=mix,
        n_buyers=6,
        n_rounds=5,
        seed=3,
    )
    defaults.update(kwargs)
    return simulate_market_deployment(design, datasets, **defaults)


def test_fullstack_truthful_auction_market(datasets):
    result = run(
        datasets, exclusive_auction_market(k=1, reserve=5.0),
        {"truthful": 1.0},
    )
    assert result.transactions == result.rounds  # one winner per round
    assert result.revenue > 0
    assert result.welfare >= result.revenue
    stats = result.by_strategy["truthful"]
    assert stats.agents == 6
    assert stats.utility >= 0  # IC design: truthful never loses
    # both sellers got paid something across the rounds
    assert all(v > 0 for v in result.seller_balances.values())
    assert 0 <= result.seller_gini <= 1


def test_fullstack_internal_market_serves_everyone(datasets):
    result = run(datasets, internal_market(), {"truthful": 1.0})
    # posted price 0: every buyer whose task clears the threshold is served
    assert result.transactions == 6 * result.rounds
    assert result.revenue == 0.0


def test_fullstack_shading_loses_sales_to_the_reserve(datasets):
    honest = run(
        datasets, exclusive_auction_market(k=1, reserve=60.0),
        {"truthful": 1.0}, n_rounds=8,
    )
    shaded = run(
        datasets, exclusive_auction_market(k=1, reserve=60.0),
        {"shading": 1.0}, n_rounds=8,
        strategy_kwargs={"shading": {"factor": 0.5}},
    )
    # shading below the reserve kills transactions the design would clear
    assert shaded.transactions < honest.transactions


def test_fullstack_validates(datasets):
    design = internal_market()
    with pytest.raises(SimulationError):
        run(datasets, design, {"truthful": 1.0}, n_rounds=0)
    with pytest.raises(SimulationError):
        simulate_market_deployment(
            design, [], ["f0"], uniform_values(0, 1), {"truthful": 1.0}
        )
