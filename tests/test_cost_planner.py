"""Cost-based join planning: fan-out stats, path choice, join ordering.

The skewed corpus used throughout: ``orders`` (the fact side, near-unique
``code``), ``events`` (several rows per code — joining it multiplies the
running cardinality) and ``status`` (a lookup covering only a fraction of
``orders.s_code`` — joining it *shrinks* the running cardinality).  A
hop-count planner attaches dimensions in attribute-mention order; the
cost model attaches the shrinking join first, so the multiplying join
runs over fewer rows and intermediates stay small, while the final bag
of rows is identical (inner equi-joins commute).
"""

import random

import pytest

from repro.discovery import (
    FanoutEstimate,
    IndexBuilder,
    MetadataEngine,
    combine_composite,
    estimate_fanouts,
    profile_table,
)
from repro.integration import MashupRequest
from repro.integration.plan import MashupPlan, _qualify
from repro.mashup import MashupBuilder
from repro.relation import Column, Relation


# ---------------------------------------------------------------------------
# corpus
# ---------------------------------------------------------------------------

def make_orders(n=200, n_s=50):
    return Relation(
        "orders",
        [Column("code", "int"), Column("s_code", "int"),
         Column("f_val", "float")],
        [(i, i % n_s, float(i)) for i in range(n)],
    )


def make_events(n=200, dup=5):
    return Relation(
        "events",
        [Column("code", "int"), Column("d_attr", "str")],
        [(i % n, f"e{i}") for i in range(n * dup)],
    )


def make_status(n_covered=10):
    return Relation(
        "status",
        [Column("s_code", "int"), Column("s_attr", "str")],
        [(i, f"st{i}") for i in range(n_covered)],
    )


def skew_builder(cost_model: bool, **kwargs) -> MashupBuilder:
    b = MashupBuilder(min_overlap=0.15, cost_model=cost_model, **kwargs)
    b.add_dataset(make_orders(), owner="a")
    b.add_dataset(make_events(), owner="b")
    b.add_dataset(make_status(), owner="c")
    return b


REQUEST = MashupRequest(attributes=["f_val", "d_attr", "s_attr"])


def peak_intermediate_rows(plan: MashupPlan, resolver) -> int:
    """Largest cardinality the plan's join pipeline passes through,
    measured by executing each prefix of the join list."""
    tree = _qualify(resolver(plan.base))
    peak = tree.count()
    for step in plan.joins:
        right = _qualify(resolver(step.dataset))
        tree = tree.join(right, on=list(step.pairs), keep_right=True)
        peak = max(peak, tree.count())
    return peak


def row_bag(mashup):
    return sorted(map(repr, mashup.relation.rows))


# ---------------------------------------------------------------------------
# fan-out estimation units
# ---------------------------------------------------------------------------

def test_estimate_fanouts_pk_fk_asymmetry():
    # referenced (PK) side: 100 unique keys; referencing side: 400 rows
    # over the same 100 values -> joining FK->PK matches ~1 row, PK->FK ~4
    pk = Relation("pk", [Column("k", "int")], [(i,) for i in range(100)])
    fk = Relation(
        "fk", [Column("k", "int")], [(i % 100,) for i in range(400)]
    )
    a = profile_table(pk).column("k")
    b = profile_table(fk).column("k")
    jac = a.signature.jaccard(b.signature)
    est = estimate_fanouts(a, b, 100, 400, jac)
    assert est is not None
    assert est.lr == pytest.approx(4.0, rel=0.35)  # pk row -> fk matches
    assert est.rl == pytest.approx(1.0, rel=0.35)  # fk row -> pk matches
    assert est.reversed() == FanoutEstimate(est.rl, est.lr)


def test_estimate_fanouts_unknown_without_signal():
    pk = Relation("pk", [Column("k", "int")], [(i,) for i in range(10)])
    a = profile_table(pk).column("k")
    assert estimate_fanouts(a, a, 10, 10, 0.0) is None


def test_combine_composite_takes_member_minimum():
    e1 = FanoutEstimate(4.0, 1.0)
    e2 = FanoutEstimate(2.0, 3.0)
    assert combine_composite([e1, e2]) == FanoutEstimate(2.0, 1.0)
    assert combine_composite([None, e1]) == e1
    assert combine_composite([None, None]) is None
    assert combine_composite([]) is None


def test_join_graph_edges_carry_fanouts():
    engine = MetadataEngine()
    index = IndexBuilder(engine, min_overlap=0.15)
    engine.register(make_orders(), owner="a")
    engine.register(make_events(), owner="b")
    engine.register(make_status(), owner="c")
    fanouts = {
        frozenset((u, v)): data["fanout"]
        for u, v, data in index.graph.edges(data=True)
    }
    ev = fanouts[frozenset(("orders", "events"))]
    assert ev is not None
    lr = ev.lr if ev.lr > ev.rl else ev.rl  # orders -> events direction
    assert lr == pytest.approx(5.0, rel=0.35)
    st = fanouts[frozenset(("orders", "status"))]
    assert st is not None
    assert min(st.lr, st.rl) < 1.0  # the shrinking direction


# ---------------------------------------------------------------------------
# cost-based vs hop-count planning
# ---------------------------------------------------------------------------

def test_cost_plan_orders_selective_join_first():
    cost = skew_builder(cost_model=True)
    hops = skew_builder(cost_model=False)
    m_cost = cost.build(REQUEST)[0]
    m_hops = hops.build(REQUEST)[0]
    assert [j.dataset for j in m_cost.plan.joins] == ["status", "events"]
    assert [j.dataset for j in m_hops.plan.joins] == ["events", "status"]
    assert cost.dod.last_stats.connector == "cost"
    assert hops.dod.last_stats.connector == "hops"


def test_cost_plan_halves_peak_with_identical_output():
    cost = skew_builder(cost_model=True)
    hops = skew_builder(cost_model=False)
    m_cost = cost.build(REQUEST)[0]
    m_hops = hops.build(REQUEST)[0]
    assert row_bag(m_cost) == row_bag(m_hops)
    peak_cost = peak_intermediate_rows(
        m_cost.plan, cost.metadata.relation
    )
    peak_hops = peak_intermediate_rows(
        m_hops.plan, hops.metadata.relation
    )
    assert peak_cost * 2 <= peak_hops


def test_join_steps_record_fanout_estimates():
    cost = skew_builder(cost_model=True)
    plan = cost.build(REQUEST)[0].plan
    by_ds = {j.dataset: j for j in plan.joins}
    assert by_ds["events"].fanout == pytest.approx(5.0, rel=0.35)
    assert by_ds["status"].fanout is not None
    assert by_ds["status"].fanout < 1.0


def test_cardinality_estimates_recorded():
    cost = skew_builder(cost_model=True)
    mashup = cost.build(REQUEST)[0]
    estimates = cost.dod.last_stats.cardinality_estimates
    assert estimates
    est, actual = estimates[0]
    assert actual == len(mashup.relation)
    # the skew corpus is estimator-friendly: expect the right magnitude
    assert est == pytest.approx(actual, rel=0.5)


@pytest.mark.parametrize("seed", range(4))
def test_property_cost_matches_heuristic_with_no_worse_peak(seed):
    """Randomized star corpora (disjoint key spaces, full containment on
    the fanning dimension): the cost-based plan returns the same bag of
    rows as the hop-count plan and never a larger peak intermediate."""
    rng = random.Random(seed)
    n_f = rng.randrange(80, 160)
    dup = rng.randrange(2, 6)
    cover = rng.randrange(10, 25)
    n_s = 40
    orders = Relation(
        "orders",
        [Column("code", "int"), Column("s_code", "int"),
         Column("f_val", "float")],
        [(i, 10_000 + i % n_s, float(i)) for i in range(n_f)],
    )
    events = Relation(
        "events",
        [Column("code", "int"), Column("d_attr", "str")],
        [(i % n_f, f"e{i}") for i in range(n_f * dup)],
    )
    status = Relation(
        "status",
        [Column("s_code", "int"), Column("s_attr", "str")],
        [(10_000 + i, f"st{i}") for i in range(cover)],
    )
    attrs = ["f_val", "d_attr", "s_attr"]
    rng.shuffle(attrs)
    request = MashupRequest(attributes=["f_val"] + [
        a for a in attrs if a != "f_val"
    ])
    builders = {}
    for flag in (True, False):
        b = MashupBuilder(min_overlap=0.1, cost_model=flag)
        b.add_dataset(orders, owner="a")
        b.add_dataset(events, owner="b")
        b.add_dataset(status, owner="c")
        builders[flag] = b
    m_cost = builders[True].build(request)
    m_hops = builders[False].build(request)
    assert m_cost and m_hops
    assert row_bag(m_cost[0]) == row_bag(m_hops[0])
    peak_cost = peak_intermediate_rows(
        m_cost[0].plan, builders[True].metadata.relation
    )
    peak_hops = peak_intermediate_rows(
        m_hops[0].plan, builders[False].metadata.relation
    )
    assert peak_cost <= peak_hops


# ---------------------------------------------------------------------------
# path memoization
# ---------------------------------------------------------------------------

def test_join_paths_memoized_across_builds():
    b = skew_builder(cost_model=True, plan_cache=False)
    b.build(REQUEST)
    first = b.dod.last_stats
    assert first.path_cache_misses > 0
    b.build(REQUEST)
    second = b.dod.last_stats
    assert second.path_cache_misses == 0
    assert second.path_cache_hits > 0


def test_path_memo_invalidated_by_graph_change():
    b = skew_builder(cost_model=True, plan_cache=False)
    b.build(REQUEST)
    # unrelated registration still bumps the graph version: memoized
    # paths must not survive into the new graph
    b.add_dataset(
        Relation("misc", [Column("zz", "str")], [("x",), ("y",)]),
        owner="d",
    )
    b.build(REQUEST)
    assert b.dod.last_stats.path_cache_misses > 0


def test_hop_mode_plans_unchanged_by_memoization():
    plain = skew_builder(cost_model=False)
    memo = skew_builder(cost_model=False, plan_cache=False)
    memo.build(REQUEST)
    a = plain.build(REQUEST)[0].plan.describe()
    b = memo.build(REQUEST)[0].plan.describe()
    assert a == b


# ---------------------------------------------------------------------------
# path-memo lifecycle (detach / re-attach / cost-model toggles)
# ---------------------------------------------------------------------------

def test_path_memo_cleared_on_detach():
    b = skew_builder(cost_model=True, plan_cache=False)
    b.build(REQUEST)
    assert b.dod._path_cache  # warm after a cost-model build
    b.dod.detach()
    assert b.dod._path_cache == {}
    assert b.dod._path_cache_version == -1
    assert b.dod._path_cache_index is None


def test_path_memo_not_served_after_reattach_to_other_index():
    """Re-pointing an engine at a *different* index whose graph-version
    counter happens to coincide must not serve the old graph's memoized
    paths — the memo is keyed by index identity, not just version."""
    a = skew_builder(cost_model=True, plan_cache=False)
    b = skew_builder(cost_model=True, plan_cache=False)
    a.build(REQUEST)
    b.build(REQUEST)
    # identically-built stacks: the version counters coincide, which is
    # exactly the case a version-only memo check cannot see through
    assert a.index.graph_version == b.index.graph_version
    dod = a.dod
    # re-point without detach: the warm memo carries a's paths under the
    # same version number — only the identity token invalidates them
    dod.index = b.index
    dod.discovery = b.discovery
    dod.engine = b.metadata
    mashups = dod.build_mashups(REQUEST)
    assert mashups
    assert dod.last_stats.path_cache_misses > 0
    assert dod._path_cache_index is b.index
    assert row_bag(mashups[0]) == row_bag(b.build(REQUEST)[0])


def test_path_memo_respects_cost_model_toggle():
    """The memo key includes the connector mode: toggling ``cost_model``
    on a live engine must answer exactly like a fresh engine in that
    mode, not from the other mode's memoized paths."""
    b = skew_builder(cost_model=True, plan_cache=False)
    b.build(REQUEST)
    b.dod.cost_model = False
    toggled = b.build(REQUEST)[0].plan.describe()
    fresh = skew_builder(
        cost_model=False, plan_cache=False
    ).build(REQUEST)[0].plan.describe()
    assert toggled == fresh
    # and back: the cost-model answer is also mode-faithful
    b.dod.cost_model = True
    again = b.build(REQUEST)[0].plan.describe()
    oracle = skew_builder(
        cost_model=True, plan_cache=False
    ).build(REQUEST)[0].plan.describe()
    assert again == oracle
