"""Tests for the streaming (dynamic-arrival) market simulator."""

import pytest

from repro.errors import SimulationError
from repro.mechanisms import PostedPriceMechanism, VickreyAuction
from repro.simulator import simulate_streaming_market, uniform_values


def test_streaming_accounting_balances():
    m = simulate_streaming_market(
        PostedPriceMechanism(price=50.0),
        uniform_values(0, 100),
        arrival_rate=3.0,
        patience=2,
        n_rounds=80,
        seed=4,
    )
    assert m.arrivals == m.served + m.expired
    assert m.revenue <= m.welfare + 1e-9
    assert 0 <= m.service_rate <= 1
    assert m.mean_wait >= 0


def test_streaming_posted_price_serves_immediately():
    m = simulate_streaming_market(
        PostedPriceMechanism(price=30.0),
        uniform_values(0, 100),
        arrival_rate=4.0,
        patience=3,
        n_rounds=100,
        seed=1,
    )
    # anyone above the price is served the round they arrive
    assert m.mean_wait == pytest.approx(0.0)
    # ~70% of U[0,100] buyers clear a price of 30
    assert m.service_rate == pytest.approx(0.7, abs=0.08)


def test_streaming_single_unit_auction_starves_impatient_buyers():
    """One Vickrey unit per round with 4 arrivals/round: most buyers expire
    — the queueing phenomenon static simulations cannot show."""
    auction = simulate_streaming_market(
        VickreyAuction(k=1),
        uniform_values(0, 100),
        arrival_rate=4.0,
        patience=3,
        n_rounds=100,
        seed=2,
    )
    posted = simulate_streaming_market(
        PostedPriceMechanism(price=50.0),
        uniform_values(0, 100),
        arrival_rate=4.0,
        patience=3,
        n_rounds=100,
        seed=2,
    )
    assert auction.service_rate < posted.service_rate
    assert auction.served <= auction.rounds  # at most one unit per round
    # but the auction extracts a high price per unit from the backlog
    assert auction.revenue / max(auction.served, 1) > (
        posted.revenue / max(posted.served, 1)
    )


def test_streaming_patience_increases_service():
    impatient = simulate_streaming_market(
        VickreyAuction(k=2), uniform_values(0, 100),
        arrival_rate=3.0, patience=1, n_rounds=80, seed=3,
    )
    patient = simulate_streaming_market(
        VickreyAuction(k=2), uniform_values(0, 100),
        arrival_rate=3.0, patience=6, n_rounds=80, seed=3,
    )
    assert patient.service_rate >= impatient.service_rate


def test_streaming_validates():
    sampler = uniform_values(0, 1)
    mech = PostedPriceMechanism(price=0.5)
    with pytest.raises(SimulationError):
        simulate_streaming_market(mech, sampler, arrival_rate=0)
    with pytest.raises(SimulationError):
        simulate_streaming_market(mech, sampler, patience=0)
    with pytest.raises(SimulationError):
        simulate_streaming_market(mech, sampler, n_rounds=0)


def test_streaming_deterministic_under_seed():
    kwargs = dict(
        value_sampler=uniform_values(0, 100),
        arrival_rate=2.0, patience=2, n_rounds=50, seed=9,
    )
    a = simulate_streaming_market(PostedPriceMechanism(50.0), **kwargs)
    b = simulate_streaming_market(PostedPriceMechanism(50.0), **kwargs)
    assert (a.revenue, a.served, a.expired) == (b.revenue, b.served, b.expired)
