"""Tests for seller/buyer platform edge paths and the barter market."""

import numpy as np
import pytest

from repro.datagen import make_classification_world
from repro.errors import MarketError
from repro.market import (
    Arbiter,
    BuyerPlatform,
    SellerPlatform,
    barter_market,
)
from repro.privacy import is_k_anonymous
from repro.relation import Column, Relation, write_csv


@pytest.fixture
def pii_relation():
    return Relation(
        "patients",
        [Column("name", "str"), Column("age", "int"), Column("risk", "float")],
        [(f"person{i}", 20 + (i % 4) * 10, float(i)) for i in range(12)],
    )


# -- seller platform ------------------------------------------------------------


def test_seller_package_validation(pii_relation):
    seller = SellerPlatform("s")
    seller.package(pii_relation)
    with pytest.raises(MarketError, match="already packaged"):
        seller.package(pii_relation)
    with pytest.raises(MarketError, match="non-negative"):
        seller.package(pii_relation.renamed("other"), reserve_price=-1.0)
    with pytest.raises(MarketError, match="no offer"):
        seller.offer("ghost")


def test_seller_package_csv_dir(tmp_path, pii_relation):
    write_csv(pii_relation, str(tmp_path / "patients.csv"))
    write_csv(
        pii_relation.project(["age"]).renamed("ages"),
        str(tmp_path / "ages.csv"),
    )
    seller = SellerPlatform("lake_steward")
    offers = seller.package_csv_dir(str(tmp_path))
    assert [o.relation.name for o in offers] == ["ages", "patients"]


def test_seller_anonymized_offer(pii_relation):
    seller = SellerPlatform("s")
    seller.package(pii_relation)
    offer = seller.anonymized_offer(
        "patients", quasi_identifiers=["age"], k=3, suppress=["name"]
    )
    assert "name" not in offer.relation.schema
    assert is_k_anonymous(offer.relation, ["age"], 3)
    # the offer keeps its market-facing name and provenance root
    assert offer.relation.name == "patients"
    assert offer.relation.provenance[0].sources() == {"patients"}


def test_seller_dp_offer_tracks_budget(pii_relation):
    seller = SellerPlatform("s", privacy_budget=2.0)
    seller.package(pii_relation)
    rng = np.random.default_rng(0)
    original = list(pii_relation.column("risk"))
    offer = seller.dp_offer("patients", "risk", epsilon=1.0, rng=rng)
    assert seller.accountant.remaining("patients") == pytest.approx(1.0)
    assert offer.relation.column("risk") != original  # noise applied


# -- buyer platform -------------------------------------------------------------


def test_buyer_rejects_foreign_wtp():
    world = make_classification_world(n_entities=60, seed=1)
    b1 = BuyerPlatform("b1")
    b2 = BuyerPlatform("b2")
    wtp = b1.classification_wtp(
        labels=world.label_relation, features=["f0"],
        price_steps=[(0.5, 10.0)],
    )
    arbiter = Arbiter(barter_market())
    arbiter.register_participant("b2")
    with pytest.raises(MarketError, match="signed by"):
        b2.submit(arbiter, wtp)


def test_buyer_latest_requires_delivery():
    buyer = BuyerPlatform("b")
    with pytest.raises(MarketError, match="no deliveries"):
        _ = buyer.latest


def test_buyer_wtp_builders_produce_valid_functions():
    world = make_classification_world(n_entities=60, seed=1)
    buyer = BuyerPlatform("b")
    for wtp in (
        buyer.classification_wtp(
            labels=world.label_relation, features=["f0"],
            price_steps=[(0.5, 10.0)],
        ),
        buyer.completeness_wtp([1, 2], ["f0"], [(0.5, 5.0)]),
        buyer.aggregate_wtp("f0", 0.0, [(0.9, 5.0)]),
        buyer.exploration_wtp(["f0"], max_budget=20.0),
    ):
        assert wtp.buyer == "b"
        assert wtp.curve.max_price > 0
        assert wtp.attributes


# -- barter market end to end ------------------------------------------------------


def test_barter_market_data_for_credits_cycle():
    """Hospitals exchange data: credits earned by sharing fund purchases."""
    world = make_classification_world(
        n_entities=200,
        feature_weights=(2.0, 2.0),
        dataset_features=((0,), (1,)),
        seed=12,
    )
    design = barter_market(grant=2.0)
    arbiter = Arbiter(design)
    # hospital A shares f0; hospital B shares f1
    for i, name in enumerate(("hospital_a", "hospital_b")):
        seller = SellerPlatform(name)
        seller.package(world.datasets[i])
        seller.share_all(arbiter)
    # hospital A buys B's data with its credits (grant covers price 1.0)
    buyer_a = BuyerPlatform("hospital_a")
    arbiter.attach_buyer_platform(buyer_a)
    wtp = buyer_a.completeness_wtp(
        wanted_keys=list(range(100)),
        attributes=["f1"],
        price_steps=[(0.5, design.mechanism.price)],
    )
    buyer_a.submit(arbiter, wtp)
    result = arbiter.run_round()
    assert result.transactions == 1
    assert arbiter.ledger.unit == "credits"
    # A paid 1 credit; B earned it (uniform sharing, 0 commission)
    assert arbiter.ledger.balance("hospital_b") == pytest.approx(3.0)
    assert arbiter.ledger.balance("hospital_a") == pytest.approx(1.0)
    assert arbiter.ledger.conservation_check()
