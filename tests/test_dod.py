"""Tests for the DoD engine and the MashupBuilder orchestration."""

import pytest

from repro.datagen import intro_scenario
from repro.integration import (
    AffineMap,
    MashupRequest,
    TransformHint,
)
from repro.mashup import MashupBuilder
from repro.relation import Column, Relation


def make_orders(n=40):
    return Relation(
        "orders",
        [Column("customer_id", "int", "customer"), Column("amount", "float")],
        [(i, float(i) * 2.0) for i in range(n)],
    )


def make_customers(n=40):
    return Relation(
        "customers",
        [Column("customer_id", "int", "customer"), Column("city", "str"),
         Column("age", "int")],
        [(i, "oslo" if i % 2 else "rome", 20 + i % 50) for i in range(n)],
    )


@pytest.fixture
def builder():
    b = MashupBuilder()
    b.add_dataset(make_orders(), owner="seller_a")
    b.add_dataset(make_customers(), owner="seller_b")
    return b


def test_single_dataset_mashup(builder):
    mashups = builder.build(MashupRequest(attributes=["city", "age"]))
    assert mashups
    best = mashups[0]
    assert set(best.relation.columns) == {"city", "age"}
    assert best.plan.sources() == ["customers"]
    assert best.coverage == 1.0


def test_cross_dataset_mashup_joins(builder):
    mashups = builder.build(
        MashupRequest(attributes=["amount", "city"], key="customer_id")
    )
    assert mashups
    best = mashups[0]
    assert set(best.relation.columns) == {"customer_id", "amount", "city"}
    assert set(best.plan.sources()) == {"orders", "customers"}
    assert len(best.relation) == 40
    # provenance spans both sellers' datasets
    assert best.relation.provenance[0].sources() == {"orders", "customers"}


def test_missing_attributes_reported(builder):
    mashups = builder.build(
        MashupRequest(attributes=["city", "favorite_color"])
    )
    assert mashups
    assert mashups[0].missing == ("favorite_color",)
    gap = builder.gap_report()
    assert "favorite_color" in gap.attributes
    assert gap.demand["favorite_color"] == 1


def test_no_mashups_when_nothing_matches(builder):
    mashups = builder.build(MashupRequest(attributes=["zzz_qqq"]))
    assert mashups == []
    assert "zzz_qqq" in builder.gap_report().attributes


def test_hint_enables_transformed_attribute(builder):
    # seller explains that amount is dollars; price_eur = 0.9 * amount
    builder.add_hint(
        TransformHint(
            dataset="orders", column="amount",
            target_attribute="price_eur", mapping=AffineMap(0.9, 0.0),
        )
    )
    mashups = builder.build(MashupRequest(attributes=["price_eur"]))
    assert mashups
    rel = mashups[0].relation
    orders = make_orders()
    assert sorted(rel.column("price_eur"))[:3] == pytest.approx(
        sorted(0.9 * a for a in orders.column("amount"))[:3]
    )
    assert "derive price_eur" in mashups[0].plan.describe()


def test_plan_describe_mentions_joins(builder):
    mashups = builder.build(
        MashupRequest(attributes=["amount", "city"], key="customer_id")
    )
    description = mashups[0].plan.describe()
    assert "join" in description and "project" in description


def test_intro_scenario_synthesis_of_f_prime():
    """The paper's Section 1 example: buyer needs d, seller has f(d)."""
    sc = intro_scenario(seed=3, n_entities=200)
    builder = MashupBuilder()
    builder.add_dataset(sc["s1"], owner="seller_1")
    builder.add_dataset(sc["s2"], owner="seller_2")

    # buyer provides query-by-example rows: entity_id + known d values
    full = sc["world"].full
    d_pos = full.schema.position("f3")
    examples = Relation(
        "examples",
        [Column("entity_id", "int", "entity"), Column("d", "float")],
        [(row[0], float(row[d_pos])) for row in full.rows[:10]],
    )
    request = MashupRequest(
        attributes=["a", "b", "d"],
        key="entity_id",
        examples=examples,
    )
    mashups = builder.build(request)
    assert mashups
    best = mashups[0]
    assert {"a", "b", "d"} <= set(best.relation.columns)
    # the synthesized d must invert fd = 1.8*d + 32 for *all* rows
    by_id_d = {
        r["entity_id"]: r["d"] for r in best.relation.to_dicts()
    }
    for row in full.rows[:50]:
        if row[0] in by_id_d:
            assert by_id_d[row[0]] == pytest.approx(row[d_pos], abs=1e-6)
    # plan transparency: the derivation is visible
    assert "derive d" in best.plan.describe()


def test_build_fused_contrast_view():
    """Two sellers offer the same signal; buyer wants the contrast."""
    a = Relation(
        "feed_a",
        [Column("city", "str"), Column("temp", "float")],
        [("oslo", 10.0), ("rome", 25.0)],
    )
    b = Relation(
        "feed_b",
        [Column("city", "str"), Column("temp", "float")],
        [("oslo", 12.0), ("rome", 25.0)],
    )
    builder = MashupBuilder()
    builder.add_dataset(a)
    builder.add_dataset(b)
    fused = builder.build_fused(
        MashupRequest(attributes=["temp"], key="city", max_results=4),
        key="city",
    )
    assert fused is not None
    # at least one cell should carry both sources' claims
    from repro.fusion import FusedValue

    cells = [
        v for row in fused.rows for v in row if isinstance(v, FusedValue)
    ]
    assert cells


def test_build_fused_none_when_no_match(builder):
    out = builder.build_fused(
        MashupRequest(attributes=["zzz"], key="customer_id"), key="customer_id"
    )
    assert out is None
