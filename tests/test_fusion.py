"""Tests for fusion cells, operators and truth discovery."""

import pytest

from repro.datagen import conflicting_sources
from repro.errors import FusionError
from repro.fusion import (
    FusedValue,
    auto_signals,
    conflict_report,
    discover_truth,
    fuse,
    resolve,
    resolve_fused_with_truth_discovery,
)
from repro.relation import Relation


def make_weather(name, temps):
    return Relation(
        name,
        [("city", "str"), ("temp", "float")],
        [(c, t) for c, t in temps.items()],
    )


@pytest.fixture
def weather_sources():
    a = make_weather("sensor", {"oslo": 10.0, "rome": 25.0})
    b = make_weather("city_feed", {"oslo": 12.0, "rome": 25.0, "lima": 18.0})
    c = make_weather("phone", {"oslo": 10.0})
    return [a, b, c]


# -- FusedValue ----------------------------------------------------------------


def test_fused_value_requires_claims():
    with pytest.raises(FusionError):
        FusedValue(())


def test_fused_value_majority_and_conflict():
    cell = FusedValue.of([("a", 10.0), ("b", 12.0), ("c", 10.0)])
    assert cell.is_conflicting
    assert cell.majority() == 10.0
    assert cell.mean() == pytest.approx(32.0 / 3)
    assert cell.spread() == pytest.approx(2.0)
    assert cell.value_from("b") == 12.0
    with pytest.raises(FusionError):
        cell.value_from("zzz")


def test_fused_value_weighted():
    cell = FusedValue.of([("good", "x"), ("bad1", "y"), ("bad2", "y")])
    assert cell.majority() == "y"
    assert cell.weighted({"good": 5.0, "bad1": 1.0, "bad2": 1.0}) == "x"


def test_fused_value_nulls():
    cell = FusedValue.of([("a", None), ("b", 3.0)])
    assert not cell.is_conflicting
    assert cell.majority() == 3.0
    assert cell.first() == 3.0
    all_null = FusedValue.of([("a", None)])
    assert all_null.majority() is None
    assert all_null.mean() is None
    assert all_null.spread() is None


# -- fuse / resolve -----------------------------------------------------------


def test_fuse_aligns_on_key(weather_sources):
    signals = {"temp": [(r.name, "temp") for r in weather_sources]}
    fused = fuse(weather_sources, "city", signals)
    assert len(fused) == 3  # oslo, rome, lima (full outer alignment)
    by_city = {r["city"]: r["temp"] for r in fused.to_dicts()}
    assert set(by_city["oslo"].sources) == {"sensor", "city_feed", "phone"}
    assert by_city["lima"].sources == ("city_feed",)


def test_fuse_provenance_spans_sources(weather_sources):
    signals = {"temp": [(r.name, "temp") for r in weather_sources]}
    fused = fuse(weather_sources, "city", signals)
    oslo_idx = fused.column("city").index("oslo")
    assert fused.provenance[oslo_idx].sources() == {
        "sensor", "city_feed", "phone"
    }


def test_fuse_validates(weather_sources):
    with pytest.raises(FusionError):
        fuse([], "city", {})
    with pytest.raises(FusionError, match="unknown dataset"):
        fuse(weather_sources, "city", {"t": [("ghost", "temp")]})
    with pytest.raises(FusionError, match="no column"):
        fuse(weather_sources, "city", {"t": [("sensor", "ghost")]})
    with pytest.raises(FusionError, match="no key"):
        fuse(weather_sources, "ghost_key", {})


def test_auto_signals(weather_sources):
    signals = auto_signals(weather_sources, "city")
    assert set(signals) == {"temp"}
    assert len(signals["temp"]) == 3


def test_resolve_strategies(weather_sources):
    fused = fuse(weather_sources, "city", auto_signals(weather_sources, "city"))
    maj = resolve(fused, "majority")
    by_city = {r["city"]: r["temp"] for r in maj.to_dicts()}
    assert by_city["oslo"] == 10.0  # two sources say 10
    mean = resolve(fused, "mean")
    assert {r["city"]: r["temp"] for r in mean.to_dicts()}[
        "oslo"
    ] == pytest.approx(32.0 / 3)
    weighted = resolve(fused, "weighted", weights={"city_feed": 10.0})
    assert {r["city"]: r["temp"] for r in weighted.to_dicts()}["oslo"] == 12.0
    kept = resolve(fused, "keep")
    assert kept is fused
    with pytest.raises(FusionError):
        resolve(fused, "oracle")
    with pytest.raises(FusionError):
        resolve(fused, "weighted")


def test_conflict_report(weather_sources):
    fused = fuse(weather_sources, "city", auto_signals(weather_sources, "city"))
    report = conflict_report(fused)
    row = report.to_dicts()[0]
    assert row["signal"] == "temp"
    assert row["cells"] == 3
    assert row["conflicting"] == 1  # only oslo disagrees


# -- truth discovery --------------------------------------------------------------


def test_truth_discovery_beats_majority_with_skewed_sources():
    truth, sources = conflicting_sources(
        5, 400, accuracies=[0.9, 0.9, 0.35, 0.35, 0.35], seed=7
    )
    truth_map = dict(truth.rows)
    result = discover_truth(sources)
    td_acc = result.accuracy_against(truth_map)

    # majority-vote baseline over the same claims
    fused = fuse(sources, "entity_id", auto_signals(sources, "entity_id"))
    maj = resolve(fused, "majority")
    maj_map = dict(maj.rows)
    maj_acc = sum(
        1 for k, v in maj_map.items() if truth_map[k] == v
    ) / len(maj_map)

    assert td_acc > maj_acc
    # learned weights rank the reliable sources on top
    w = result.source_weights
    assert min(w["source_0"], w["source_1"]) > max(
        w["source_2"], w["source_3"], w["source_4"]
    )


def test_truth_discovery_validates():
    with pytest.raises(FusionError):
        discover_truth([])
    empty = Relation("s", [("entity_id", "int"), ("claim", "str")], [])
    with pytest.raises(FusionError, match="no claims"):
        discover_truth([empty])
    _truth, sources = conflicting_sources(2, 10, accuracies=[0.9, 0.9])
    with pytest.raises(FusionError):
        discover_truth(sources, max_iterations=0)


def test_truth_discovery_on_fused_column(weather_sources):
    fused = fuse(weather_sources, "city", auto_signals(weather_sources, "city"))
    result = resolve_fused_with_truth_discovery(fused, "city", "temp")
    assert set(result.truths) == {"oslo", "rome", "lima"}
    with pytest.raises(FusionError):
        resolve_fused_with_truth_discovery(fused, "city", "city")
