"""Additional edge-case coverage for the relational substrate."""

import pytest

from repro.errors import SchemaError
from repro.relation import Column, ProvOne, Relation


@pytest.fixture
def people():
    return Relation(
        "people",
        [("id", "int"), ("name", "str"), ("age", "int")],
        [(1, "ann", 34), (2, "bob", 28), (3, "ann", 28)],
    )


def test_row_dict(people):
    assert people.row_dict(1) == {"id": 2, "name": "bob", "age": 28}


def test_order_by_multiple_columns(people):
    ordered = people.order_by(["name", "age"])
    assert ordered.column("id") == [3, 1, 2]  # ann/28, ann/34, bob/28


def test_empty_relation_operations():
    empty = Relation.empty("e", [("a", "int"), ("b", "str")])
    assert len(empty) == 0
    assert empty.project(["a"]).columns == ("a",)
    assert len(empty.select(lambda r: True)) == 0
    assert len(empty.distinct()) == 0
    assert empty.aggregate(["a"], {"n": ("*", "count")}).rows == ()
    other = Relation("o", [("a", "int"), ("c", "str")], [(1, "x")])
    assert len(empty.join(other, on=[("a", "a")])) == 0
    assert empty.content_hash() != other.content_hash()


def test_join_on_mixed_numeric_types():
    ints = Relation("i", [("k", "int")], [(1,), (2,)])
    floats = Relation("f", [("k", "float"), ("v", "str")],
                      [(1.0, "one"), (3.0, "three")])
    joined = ints.join(floats, on=[("k", "k")])
    assert len(joined) == 1
    assert joined.rows[0] == (1, "one")


def test_union_preserves_duplicates_and_provenance(people):
    u = people.union(people)
    assert len(u) == 6
    assert u.provenance[0] == u.provenance[3]  # same base token twice


def test_extend_then_drop_roundtrip(people):
    extended = people.extend(Column("adult", "bool"),
                             lambda r: r["age"] >= 30)
    assert extended.column("adult") == [True, False, False]
    assert extended.drop(["adult"]) == people


def test_without_provenance_yields_prov_one(people):
    bare = people.without_provenance()
    assert all(isinstance(p, ProvOne) for p in bare.provenance)


def test_schema_mismatch_in_explicit_provenance():
    with pytest.raises(SchemaError, match="provenance vector"):
        Relation("r", [("a", "int")], [(1,)], provenance=[])


def test_where_on_missing_column_raises(people):
    from repro.errors import UnknownColumnError

    with pytest.raises(UnknownColumnError):
        people.where(ghost=1)


def test_map_column_allows_type_change(people):
    mapped = people.map_column("age", lambda a: f"{a}y")
    assert mapped.column("age") == ["34y", "28y", "28y"]
    assert mapped.schema["age"].dtype == "any"


def test_aggregate_min_max_first():
    r = Relation(
        "r",
        [("g", "str"), ("x", "int")],
        [("a", 3), ("a", 1), ("b", 7)],
    )
    out = r.aggregate(
        ["g"],
        {"lo": ("x", "min"), "hi": ("x", "max"), "head": ("x", "first")},
    )
    by_g = {row["g"]: row for row in out.to_dicts()}
    assert by_g["a"]["lo"] == 1 and by_g["a"]["hi"] == 3
    assert by_g["a"]["head"] == 3  # first in row order
    assert by_g["b"]["lo"] == by_g["b"]["hi"] == 7


def test_aggregate_all_null_group():
    r = Relation("r", [("g", "str"), ("x", "int")], [("a", None)])
    out = r.aggregate(["g"], {"m": ("x", "mean"), "n": ("x", "count")})
    row = out.to_dicts()[0]
    assert row["m"] is None and row["n"] == 0
