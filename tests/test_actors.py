"""Tests for ecosystem actors: opportunistic sellers and arbitrageurs."""

import pytest

from repro.datagen import make_classification_world
from repro.errors import LicensingError, MarketError
from repro.market import (
    Arbiter,
    BuyerPlatform,
    License,
    LicenseKind,
    external_market,
)
from repro.relation import Column, Relation
from repro.simulator import Arbitrageur, OpportunisticSeller


@pytest.fixture
def market_with_gap():
    """A market where buyers demand attribute 'e' that nobody supplies."""
    world = make_classification_world(
        n_entities=150, feature_weights=(2.0, 1.5), dataset_features=((0, 1),),
        seed=6,
    )
    arbiter = Arbiter(external_market())
    arbiter.accept_dataset(world.datasets[0], seller="s1")
    buyer = BuyerPlatform("b1")
    arbiter.register_participant("b1", funding=500.0)
    wtp = buyer.completeness_wtp(
        wanted_keys=list(range(50)),
        attributes=["f0", "attr_e"],
        price_steps=((0.3, 50.0),),
    )
    buyer.submit(arbiter, wtp)
    arbiter.run_round()  # publishes the attr_e gap
    return arbiter, world


def e_dataset_factory():
    return Relation(
        "collected_e",
        [Column("entity_id", "int", "entity"), Column("attr_e", "float")],
        [(i, float(i) * 0.5) for i in range(150)],
    )


def test_opportunistic_seller_fills_gap(market_with_gap):
    arbiter, _world = market_with_gap
    assert any(
        r.attribute == "attr_e" for r in arbiter.negotiation.open_requests()
    )
    seller3 = OpportunisticSeller(
        "seller3", {"attr_e": e_dataset_factory}, collection_cost=0.5
    )
    reports = seller3.scan_and_collect(arbiter)
    assert len(reports) == 1
    assert reports[0].attribute == "attr_e"
    assert reports[0].expected_profit > 0
    # the attribute is now available in the market
    assert "collected_e" in arbiter.builder.datasets
    assert not any(
        r.attribute == "attr_e" for r in arbiter.negotiation.open_requests()
    )


def test_opportunistic_seller_skips_unprofitable(market_with_gap):
    arbiter, _world = market_with_gap
    expensive = OpportunisticSeller(
        "lazy", {"attr_e": e_dataset_factory}, collection_cost=10_000.0
    )
    assert expensive.scan_and_collect(arbiter) == []
    with pytest.raises(MarketError):
        OpportunisticSeller("x", {}, collection_cost=-1.0)


def test_opportunistic_seller_catalog_must_match(market_with_gap):
    arbiter, _world = market_with_gap
    bad_factory = lambda: Relation("junk", [("x", "int")], [(1,)])
    broken = OpportunisticSeller("broken", {"attr_e": bad_factory},
                                 collection_cost=0.0)
    with pytest.raises(MarketError, match="without that attribute"):
        broken.scan_and_collect(arbiter)


def test_gap_then_collection_enables_sale(market_with_gap):
    """After the opportunistic seller fills the gap, the buyer's request
    succeeds — the full Section 7.1 loop."""
    arbiter, _world = market_with_gap
    seller3 = OpportunisticSeller(
        "seller3", {"attr_e": e_dataset_factory}, collection_cost=0.5
    )
    seller3.scan_and_collect(arbiter)
    buyer = BuyerPlatform("b2")
    arbiter.register_participant("b2", funding=500.0)
    wtp = buyer.completeness_wtp(
        wanted_keys=list(range(50)),
        attributes=["f0", "attr_e"],
        price_steps=((0.3, 50.0),),
    )
    buyer.submit(arbiter, wtp)
    result = arbiter.run_round()
    assert result.transactions == 1
    assert "collected_e" in result.deliveries[0].mashup.plan.sources()


def test_arbitrageur_buy_transform_relist():
    world = make_classification_world(
        n_entities=120, feature_weights=(2.0, 1.0),
        dataset_features=((0, 1),), seed=7,
    )
    arbiter = Arbiter(external_market())
    arbiter.accept_dataset(world.datasets[0], seller="s1")

    arb = Arbitrageur("arb1")
    arb.join_market(arbiter, funding=300.0)
    delivered = arb.acquire(
        arbiter, attributes=["f0", "f1"],
        wanted_keys=list(range(60)), max_price=20.0,
    )
    assert delivered is not None
    relisted = arb.relist(
        arbiter,
        delivered,
        "arb1_enriched",
        transform=lambda rel: rel.extend(
            Column("f0_squared", "float"), lambda row: row["f0"] ** 2
        ),
    )
    assert "f0_squared" in relisted.schema
    assert "arb1_enriched" in arbiter.builder.datasets
    # a downstream buyer purchases the enriched dataset
    buyer = BuyerPlatform("b9")
    arbiter.register_participant("b9", funding=500.0)
    wtp = buyer.completeness_wtp(
        wanted_keys=list(range(60)),
        attributes=["f0_squared"],
        price_steps=((0.3, 40.0),),
    )
    buyer.submit(arbiter, wtp)
    result = arbiter.run_round()
    assert result.transactions == 1
    assert arbiter.lineage.revenue_of("arb1_enriched") >= 0.0
    # profit accounting works (may be negative if resale priced at 0)
    assert isinstance(arb.profit(arbiter), float)


def test_arbitrageur_blocked_by_non_resale_license():
    world = make_classification_world(
        n_entities=100, feature_weights=(2.0,), dataset_features=((0,),),
        seed=8,
    )
    arbiter = Arbiter(external_market())
    arbiter.accept_dataset(
        world.datasets[0], seller="s1",
        license=License(LicenseKind.NON_RESALE),
    )
    arb = Arbitrageur("arb2")
    arb.join_market(arbiter, funding=300.0)
    delivered = arb.acquire(
        arbiter, attributes=["f0"], wanted_keys=list(range(50)),
        max_price=20.0,
    )
    assert delivered is not None
    with pytest.raises(LicensingError, match="forbids resale"):
        arb.relist(arbiter, delivered, "arb2_copy")
