"""Tests for the embedding-market task (Section 4.5)."""

import numpy as np
import pytest

from repro.relation import Column, Relation, Schema
from repro.wtp import EmbeddingSimilarityTask, TaskEvaluationError

DIM = 4
COLS = [f"e{i}" for i in range(DIM)]


def embedding_relation(name: str, vectors: np.ndarray) -> Relation:
    schema = Schema(
        [Column("entity_id", "int", "entity")] +
        [Column(c, "float") for c in COLS]
    )
    rows = [
        (i, *(float(v) for v in vec)) for i, vec in enumerate(vectors)
    ]
    return Relation(name, schema, rows)


@pytest.fixture
def vectors():
    rng = np.random.default_rng(0)
    return rng.normal(0, 1, size=(30, DIM))


def test_identical_embeddings_score_one(vectors):
    refs = embedding_relation("refs", vectors[:10])
    candidate = embedding_relation("cand", vectors)
    task = EmbeddingSimilarityTask(references=refs, embedding_columns=COLS)
    assert task.evaluate(candidate) == pytest.approx(1.0)


def test_quantization_degrades_satisfaction(vectors):
    refs = embedding_relation("refs", vectors[:10])
    task = EmbeddingSimilarityTask(references=refs, embedding_columns=COLS)
    full = task.evaluate(embedding_relation("full", vectors))
    # coarse 1-bit quantization: keep only the sign
    quantized = embedding_relation("quant", np.sign(vectors))
    q_score = task.evaluate(quantized)
    # random noise replacing the vectors entirely scores worst
    rng = np.random.default_rng(9)
    noise = embedding_relation("noise", rng.normal(0, 1, vectors.shape))
    n_score = task.evaluate(noise)
    assert full > q_score > n_score
    assert q_score > 0.75  # sign-quantization preserves direction


def test_embedding_task_errors(vectors):
    refs = embedding_relation("refs", vectors[:10])
    task = EmbeddingSimilarityTask(references=refs, embedding_columns=COLS)
    no_key = embedding_relation("c", vectors).drop(["entity_id"])
    with pytest.raises(TaskEvaluationError, match="key"):
        task.evaluate(no_key)
    partial = embedding_relation("c", vectors).drop(["e0"])
    with pytest.raises(TaskEvaluationError, match="embedding columns"):
        task.evaluate(partial)
    disjoint = embedding_relation("c", vectors)
    shifted = Relation(
        "c2", disjoint.schema,
        [(row[0] + 1000, *row[1:]) for row in disjoint.rows],
    )
    with pytest.raises(TaskEvaluationError, match="comparable"):
        task.evaluate(shifted)


def test_required_attributes(vectors):
    refs = embedding_relation("refs", vectors[:10])
    task = EmbeddingSimilarityTask(references=refs, embedding_columns=COLS)
    assert task.required_attributes == COLS
