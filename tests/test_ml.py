"""Tests for the ML substrate."""

import numpy as np
import pytest

from repro.ml import (
    DecisionStump,
    KNNClassifier,
    LogisticRegression,
    accuracy,
    cross_val_accuracy,
    precision_recall_f1,
    train_test_split,
)


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    n = 200
    x0 = rng.normal(-2, 1, size=(n, 2))
    x1 = rng.normal(2, 1, size=(n, 2))
    x = np.vstack([x0, x1])
    y = np.array([0] * n + [1] * n)
    return x, y


def test_logistic_separable(blobs):
    x, y = blobs
    model = LogisticRegression().fit(x, y)
    assert accuracy(y, model.predict(x)) > 0.95
    proba = model.predict_proba(x)
    assert np.all((proba >= 0) & (proba <= 1))


def test_logistic_validates_shapes():
    with pytest.raises(ValueError):
        LogisticRegression().fit(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        LogisticRegression().fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(ValueError):
        LogisticRegression().predict(np.zeros((1, 2)))


def test_logistic_handles_constant_feature(blobs):
    x, y = blobs
    x = np.hstack([x, np.ones((x.shape[0], 1))])
    model = LogisticRegression().fit(x, y)
    assert accuracy(y, model.predict(x)) > 0.9


def test_knn(blobs):
    x, y = blobs
    model = KNNClassifier(k=3).fit(x, y)
    assert accuracy(y, model.predict(x)) > 0.95
    with pytest.raises(ValueError):
        KNNClassifier().predict(np.zeros((1, 2)))
    with pytest.raises(ValueError):
        KNNClassifier().fit(np.zeros((0, 2)), np.zeros(0))


def test_knn_k_larger_than_data():
    x = np.array([[0.0], [1.0], [2.0]])
    y = np.array([0, 0, 1])
    model = KNNClassifier(k=10).fit(x, y)
    assert model.predict(np.array([[0.1]]))[0] == 0


def test_stump_finds_threshold():
    x = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([0, 0, 1, 1])
    stump = DecisionStump().fit(x, y)
    assert accuracy(y, stump.predict(x)) == 1.0
    assert 1.0 <= stump.threshold < 3.0


def test_stump_inverted_labels():
    x = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([1, 1, 0, 0])
    stump = DecisionStump().fit(x, y)
    assert accuracy(y, stump.predict(x)) == 1.0


def test_stump_validates():
    with pytest.raises(ValueError):
        DecisionStump().fit(np.zeros((0, 1)), np.zeros(0))
    with pytest.raises(ValueError):
        DecisionStump().predict(np.zeros((1, 1)))


def test_accuracy_and_prf():
    y_true = np.array([1, 1, 0, 0])
    y_pred = np.array([1, 0, 0, 0])
    assert accuracy(y_true, y_pred) == pytest.approx(0.75)
    p, r, f1 = precision_recall_f1(y_true, y_pred)
    assert p == 1.0 and r == 0.5
    assert f1 == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        accuracy(np.array([1]), np.array([1, 2]))
    with pytest.raises(ValueError):
        accuracy(np.array([]), np.array([]))


def test_prf_degenerate_no_positives():
    p, r, f1 = precision_recall_f1(np.array([0, 0]), np.array([0, 0]))
    assert (p, r, f1) == (0.0, 0.0, 0.0)


def test_train_test_split(blobs):
    x, y = blobs
    x_tr, x_te, y_tr, y_te = train_test_split(x, y, test_fraction=0.25, seed=1)
    assert len(x_te) == 100 and len(x_tr) == 300
    assert len(y_te) == 100
    # deterministic under the same seed
    again = train_test_split(x, y, test_fraction=0.25, seed=1)
    assert np.array_equal(again[1], x_te)
    with pytest.raises(ValueError):
        train_test_split(x, y, test_fraction=0.0)
    with pytest.raises(ValueError):
        train_test_split(x[:1], y[:1])


def test_cross_val(blobs):
    x, y = blobs
    score = cross_val_accuracy(lambda: LogisticRegression(epochs=100), x, y,
                               folds=3)
    assert score > 0.9
    with pytest.raises(ValueError):
        cross_val_accuracy(LogisticRegression, x, y, folds=1)
