"""Unit tests for the Relation class and its provenance propagation."""

import numpy as np
import pytest

from repro.errors import SchemaError, TypeMismatchError, UnknownColumnError
from repro.relation import Column, ProvToken, Relation


@pytest.fixture
def people():
    return Relation(
        "people",
        [("id", "int"), ("name", "str"), ("age", "int")],
        [(1, "ann", 34), (2, "bob", 28), (3, "cyd", 41)],
    )


@pytest.fixture
def cities():
    return Relation(
        "cities",
        [("id", "int"), ("city", "str")],
        [(1, "oslo"), (2, "rome"), (4, "lima")],
    )


def test_construction_validates_rows():
    with pytest.raises(TypeMismatchError):
        Relation("r", [("a", "int")], [("not-int",)])
    with pytest.raises(SchemaError):
        Relation("r", [("a", "int")], [(1, 2)])


def test_default_provenance_tags_rows(people):
    assert people.provenance[0] == ProvToken("people", 0)
    assert people.provenance[2] == ProvToken("people", 2)


def test_from_dicts_infers_schema():
    r = Relation.from_dicts("r", [{"a": 1, "b": "x"}, {"a": 2, "b": None}])
    assert r.schema["a"].dtype == "int"
    assert r.schema["b"].dtype == "str"
    assert len(r) == 2


def test_from_dicts_empty_requires_schema():
    with pytest.raises(SchemaError):
        Relation.from_dicts("r", [])
    r = Relation.from_dicts("r", [], schema=[("a", "int")])
    assert len(r) == 0


def test_column_and_to_dicts(people):
    assert people.column("name") == ["ann", "bob", "cyd"]
    assert people.to_dicts()[1] == {"id": 2, "name": "bob", "age": 28}
    with pytest.raises(UnknownColumnError):
        people.column("zzz")


def test_project_keeps_provenance(people):
    p = people.project(["name"])
    assert p.columns == ("name",)
    assert p.provenance == people.provenance


def test_select_and_where(people):
    adults = people.select(lambda r: r["age"] > 30)
    assert len(adults) == 2
    assert adults.provenance[0] == ProvToken("people", 0)
    assert len(people.where(name="bob")) == 1
    assert len(people.where(name="bob", age=99)) == 0


def test_rename(people):
    r = people.rename({"name": "full_name"})
    assert "full_name" in r.schema
    assert r.column("full_name") == people.column("name")


def test_extend_adds_computed_column(people):
    r = people.extend(Column("next_age", "int"), lambda row: row["age"] + 1)
    assert r.column("next_age") == [35, 29, 42]
    with pytest.raises(SchemaError):
        people.extend("age", lambda row: 0)


def test_drop(people):
    r = people.drop(["age"])
    assert r.columns == ("id", "name")
    with pytest.raises(UnknownColumnError):
        people.drop(["nope"])


def test_distinct_merges_provenance():
    r = Relation("r", [("a", "int")], [(1,), (1,), (2,)])
    d = r.distinct()
    assert len(d) == 2
    # the duplicate row's annotation is a sum of both derivations
    merged = d.provenance[0]
    assert {t.row_id for t in merged.tokens()} == {0, 1}


def test_union_requires_same_columns(people, cities):
    with pytest.raises(SchemaError):
        people.union(cities)
    u = people.union(people)
    assert len(u) == 6


def test_join_natural(people, cities):
    j = people.join(cities)
    assert len(j) == 2
    assert set(j.column("city")) == {"oslo", "rome"}
    # provenance of joined rows is a product over both sources
    assert j.provenance[0].sources() == {"people", "cities"}


def test_join_on_pairs_and_suffix():
    left = Relation("l", [("k", "int"), ("v", "str")], [(1, "a")])
    right = Relation("r", [("key", "int"), ("v", "str")], [(1, "b")])
    j = left.join(right, on=[("k", "key")])
    assert j.columns == ("k", "v", "v_r")
    assert j.rows[0] == (1, "a", "b")


def test_join_nulls_never_match():
    left = Relation("l", [("k", "int")], [(None,), (1,)])
    right = Relation("r", [("k", "int")], [(None,), (1,)])
    assert len(left.join(right)) == 1


def test_join_no_shared_columns_raises(people):
    other = Relation("o", [("x", "int")], [(1,)])
    with pytest.raises(SchemaError):
        people.join(other)


def test_left_join_pads_with_nulls(people, cities):
    j = people.left_join(cities)
    assert len(j) == 3
    missing = [r for r in j.to_dicts() if r["city"] is None]
    assert len(missing) == 1 and missing[0]["id"] == 3


def test_aggregate_count_sum_mean():
    r = Relation(
        "sales",
        [("store", "str"), ("amount", "float")],
        [("a", 10.0), ("a", 20.0), ("b", 5.0)],
    )
    g = r.aggregate(["store"], {"n": ("*", "count"), "total": ("amount", "sum"),
                                "avg": ("amount", "mean")})
    by_store = {row["store"]: row for row in g.to_dicts()}
    assert by_store["a"]["n"] == 2
    assert by_store["a"]["total"] == pytest.approx(30.0)
    assert by_store["b"]["avg"] == pytest.approx(5.0)


def test_aggregate_provenance_is_group_sum():
    r = Relation("r", [("g", "str"), ("x", "int")], [("a", 1), ("a", 2)])
    g = r.aggregate(["g"], {"n": ("*", "count")})
    assert {t.row_id for t in g.provenance[0].tokens()} == {0, 1}


def test_aggregate_unknown_agg():
    r = Relation("r", [("g", "str")], [("a",)])
    with pytest.raises(SchemaError):
        r.aggregate(["g"], {"x": ("g", "median")})


def test_order_by_and_limit(people):
    r = people.order_by(["age"])
    assert r.column("age") == [28, 34, 41]
    r = people.order_by(["age"], descending=True).limit(1)
    assert r.column("name") == ["cyd"]


def test_order_by_handles_nulls():
    r = Relation("r", [("a", "int")], [(2,), (None,), (1,)])
    assert r.order_by(["a"]).column("a") == [None, 1, 2]


def test_sample(people):
    rng = np.random.default_rng(0)
    s = people.sample(2, rng)
    assert len(s) == 2
    assert people.sample(99, rng) is people


def test_map_column(people):
    r = people.map_column("age", lambda a: a * 2)
    assert r.column("age") == [68, 56, 82]


def test_equality_is_bag_and_order_insensitive():
    a = Relation("a", [("x", "int")], [(1,), (2,)])
    b = Relation("b", [("x", "int")], [(2,), (1,)])
    assert a == b
    c = Relation("c", [("x", "int")], [(1,), (1,)])
    assert a != c


def test_content_hash_stable_under_row_order():
    a = Relation("a", [("x", "int")], [(1,), (2,)])
    b = Relation("b", [("x", "int")], [(2,), (1,)])
    assert a.content_hash() == b.content_hash()
    c = Relation("c", [("x", "int")], [(3,)])
    assert a.content_hash() != c.content_hash()


def test_pretty_contains_header_and_rows(people):
    text = people.pretty()
    assert "name" in text and "ann" in text
    long = Relation("r", [("x", "int")], [(i,) for i in range(20)])
    assert "more rows" in long.pretty(limit=3)


def test_with_provenance_root(people):
    r = people.project(["name"]).with_provenance_root("fresh")
    assert r.provenance[0] == ProvToken("fresh", 0)


def test_head(people):
    assert len(people.head(2)) == 2
