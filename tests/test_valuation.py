"""Tests for coalition games, Shapley estimators, least core, KNN-Shapley."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValuationError
from repro.valuation import (
    CoalitionGame,
    efficiency_gap,
    exact_shapley,
    in_core,
    knn_shapley,
    knn_utility,
    least_core,
    leave_one_out,
    monte_carlo_shapley,
    normalize_to_total,
    shapley_error,
    truncated_monte_carlo_shapley,
)


def glove_game():
    """Classic 3-player glove game: a has a left glove, b/c right gloves."""
    def v(s):
        lefts = 1 if "a" in s else 0
        rights = ("b" in s) + ("c" in s)
        return float(min(lefts, rights))
    return CoalitionGame.of(["a", "b", "c"], v)


def additive_game(values):
    return CoalitionGame.of(
        list(values), lambda s: sum(values[p] for p in s)
    )


def test_game_validates():
    with pytest.raises(ValuationError):
        CoalitionGame.of([], lambda s: 0.0)
    with pytest.raises(ValuationError):
        CoalitionGame.of(["a", "a"], lambda s: 0.0)
    g = glove_game()
    with pytest.raises(ValuationError):
        g.value({"zzz"})


def test_game_caches():
    calls = []
    g = CoalitionGame.of(["a", "b"], lambda s: calls.append(s) or len(s))
    g.value({"a"})
    g.value({"a"})
    assert g.evaluations == 1


def test_exact_shapley_glove():
    shapley = exact_shapley(glove_game())
    # textbook solution: a = 2/3, b = c = 1/6
    assert shapley["a"] == pytest.approx(2 / 3)
    assert shapley["b"] == pytest.approx(1 / 6)
    assert shapley["c"] == pytest.approx(1 / 6)


def test_exact_shapley_additive_is_identity():
    vals = {"x": 3.0, "y": 7.0, "z": 0.5}
    shapley = exact_shapley(additive_game(vals))
    for p, v in vals.items():
        assert shapley[p] == pytest.approx(v)


def test_exact_shapley_refuses_large_games():
    big = CoalitionGame.of([f"p{i}" for i in range(20)], lambda s: len(s))
    with pytest.raises(ValuationError, match="2\\^20"):
        exact_shapley(big)


def test_exact_shapley_efficiency():
    g = glove_game()
    assert efficiency_gap(g, exact_shapley(g)) < 1e-9


def test_monte_carlo_converges_to_exact():
    g = glove_game()
    approx = monte_carlo_shapley(g, n_permutations=2000, seed=1)
    assert shapley_error(approx, exact_shapley(g)) < 0.03


def test_monte_carlo_is_efficient_per_permutation():
    g = glove_game()
    approx = monte_carlo_shapley(g, n_permutations=10, seed=0)
    # telescoping sum makes every permutation exactly efficient
    assert efficiency_gap(g, approx) < 1e-9
    with pytest.raises(ValuationError):
        monte_carlo_shapley(g, n_permutations=0)


def test_truncated_mc_close_but_cheaper():
    rng = np.random.default_rng(0)
    weights = {f"p{i}": float(rng.uniform(0.4, 1.0)) for i in range(8)}

    def v(s):  # capped additive: marginals vanish once the cap is hit
        return min(sum(weights[p] for p in s), 2.0)

    g1 = CoalitionGame.of(list(weights), v)
    g2 = CoalitionGame.of(list(weights), v)
    full = monte_carlo_shapley(g1, n_permutations=60, seed=3)
    trunc = truncated_monte_carlo_shapley(
        g2, n_permutations=60, truncation_tolerance=0.05, seed=3
    )
    assert g2.evaluations < g1.evaluations  # truncation saves evaluations
    assert shapley_error(trunc, full) < 0.1
    with pytest.raises(ValuationError):
        truncated_monte_carlo_shapley(g2, n_permutations=0)


def test_leave_one_out_misses_synergy():
    # pure-synergy game: v(S)=1 iff both players present
    g = CoalitionGame.of(["a", "b"], lambda s: 1.0 if len(s) == 2 else 0.0)
    loo = leave_one_out(g)
    assert loo == {"a": 1.0, "b": 1.0}  # over-credits: sums to 2 > v(N)=1
    shapley = exact_shapley(g)
    assert shapley["a"] == pytest.approx(0.5)


def test_shapley_error_requires_shared_players():
    with pytest.raises(ValuationError):
        shapley_error({"a": 1.0}, {"b": 1.0})


@settings(max_examples=20, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.floats(0.0, 10.0),
        min_size=2,
        max_size=4,
    )
)
def test_property_exact_shapley_symmetry_and_efficiency(values):
    """For additive games Shapley = individual value; always efficient."""
    g = additive_game(values)
    shapley = exact_shapley(g)
    assert efficiency_gap(g, shapley) < 1e-8
    for p in values:
        assert shapley[p] == pytest.approx(values[p], abs=1e-8)


# -- least core -----------------------------------------------------------------


def test_least_core_glove():
    allocation, excess = least_core(glove_game())
    assert sum(allocation.values()) == pytest.approx(1.0)
    # in the glove game the core gives everything to the scarce player
    assert allocation["a"] >= 0.9
    assert excess <= 0.35


def test_least_core_additive_in_core():
    vals = {"x": 2.0, "y": 5.0}
    allocation, excess = least_core(additive_game(vals))
    assert excess == pytest.approx(0.0, abs=1e-9)
    assert in_core(additive_game(vals), allocation)


def test_in_core_detects_violations():
    g = additive_game({"x": 2.0, "y": 5.0})
    assert not in_core(g, {"x": 0.0, "y": 7.0})  # x's singleton blocks
    assert not in_core(g, {"x": 2.0, "y": 2.0})  # inefficient
    with pytest.raises(ValuationError):
        in_core(g, {"x": 2.0})


def test_least_core_refuses_large_games():
    big = CoalitionGame.of([f"p{i}" for i in range(16)], lambda s: len(s))
    with pytest.raises(ValuationError):
        least_core(big)


# -- KNN-Shapley -----------------------------------------------------------------


@pytest.fixture(scope="module")
def knn_data():
    rng = np.random.default_rng(4)
    n = 40
    x0 = rng.normal(-2, 0.7, size=(n, 2))
    x1 = rng.normal(2, 0.7, size=(n, 2))
    x = np.vstack([x0, x1])
    y = np.array([0] * n + [1] * n)
    x_test = np.vstack([rng.normal(-2, 0.7, (10, 2)),
                        rng.normal(2, 0.7, (10, 2))])
    y_test = np.array([0] * 10 + [1] * 10)
    return x, y, x_test, y_test


def test_knn_shapley_efficiency(knn_data):
    """Sum of KNN-Shapley values equals total KNN utility (efficiency)."""
    x, y, x_test, y_test = knn_data
    values = knn_shapley(x, y, x_test, y_test, k=5)
    total = knn_utility(x, y, x_test, y_test, k=5)
    assert values.sum() == pytest.approx(total, abs=1e-9)


def test_knn_shapley_helpful_points_score_higher(knn_data):
    x, y, x_test, y_test = knn_data
    values = knn_shapley(x, y, x_test, y_test, k=5)
    # corrupt 5 labels: those points should fall in the value ranking
    y_bad = y.copy()
    y_bad[:5] = 1 - y_bad[:5]
    values_bad = knn_shapley(x, y_bad, x_test, y_test, k=5)
    assert values_bad[:5].mean() < values[5:].mean()
    assert values_bad[:5].mean() < values_bad[5:].mean()


def test_knn_shapley_validates(knn_data):
    x, y, x_test, y_test = knn_data
    with pytest.raises(ValuationError):
        knn_shapley(x[:0], y[:0], x_test, y_test)
    with pytest.raises(ValuationError):
        knn_shapley(x, y, x_test, y_test, k=0)
    with pytest.raises(ValuationError):
        knn_shapley(x, y[:-1], x_test, y_test)


# -- normalization helper ----------------------------------------------------------


def test_normalize_to_total():
    out = normalize_to_total({"a": 1.0, "b": 3.0}, total=100.0)
    assert out["a"] == pytest.approx(25.0)
    assert out["b"] == pytest.approx(75.0)
    # negative contributions floored at zero
    out = normalize_to_total({"a": -5.0, "b": 5.0}, total=10.0)
    assert out == {"a": 0.0, "b": 10.0}
    # degenerate all-zero: equal split
    out = normalize_to_total({"a": 0.0, "b": 0.0}, total=10.0)
    assert out == {"a": 5.0, "b": 5.0}
