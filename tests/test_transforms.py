"""Tests for data-preparation transforms."""

import pytest

from repro.datagen import time_series
from repro.errors import IntegrationError
from repro.integration import downsample_mean, interpolate_to_grid, pivot
from repro.relation import Relation


def test_interpolate_upsamples_linearly():
    ts = time_series("t", 5, 100, lambda t: t / 10.0)  # value = t/10
    out = interpolate_to_grid(ts, "t", "value", 50)
    by_t = dict(out.rows)
    assert by_t[50] == pytest.approx(5.0)
    assert by_t[150] == pytest.approx(15.0)
    assert min(by_t) >= 0 and max(by_t) <= 400


def test_interpolate_validates():
    ts = time_series("t", 5, 100, lambda t: t)
    with pytest.raises(IntegrationError):
        interpolate_to_grid(ts, "t", "value", 0)
    single = Relation("s", [("t", "int"), ("value", "float")], [(0, 1.0)])
    with pytest.raises(IntegrationError, match="at least 2"):
        interpolate_to_grid(single, "t", "value", 10)
    dupes = Relation(
        "d", [("t", "int"), ("value", "float")], [(0, 1.0), (0, 2.0)]
    )
    with pytest.raises(IntegrationError, match="duplicate"):
        interpolate_to_grid(dupes, "t", "value", 10)


def test_interpolation_enables_time_join():
    hourly = time_series("city", 5, 3600, lambda t: 20.0)
    five_min = time_series("sensor", 50, 300, lambda t: 25.0)
    resampled = interpolate_to_grid(five_min, "t", "value", 3600)
    joined = hourly.join(resampled, on=["t"])
    assert len(joined) >= 4


def test_downsample_mean():
    ts = Relation(
        "t", [("t", "int"), ("value", "float")],
        [(0, 1.0), (10, 3.0), (60, 10.0), (70, 20.0)],
    )
    out = downsample_mean(ts, "t", "value", 60)
    by_t = dict(out.rows)
    assert by_t[0] == pytest.approx(2.0)
    assert by_t[60] == pytest.approx(15.0)
    with pytest.raises(IntegrationError):
        downsample_mean(ts, "t", "value", -5)


def test_pivot():
    sales = Relation(
        "sales",
        [("month", "str"), ("store", "str"), ("amount", "float")],
        [("jan", "a", 10.0), ("jan", "b", 20.0), ("feb", "a", 30.0)],
    )
    wide = pivot(sales, "month", "store", "amount")
    assert set(wide.columns) == {"month", "a", "b"}
    rows = {r["month"]: r for r in wide.to_dicts()}
    assert rows["jan"]["b"] == 20.0
    assert rows["feb"]["b"] is None


def test_pivot_empty_pivot_column():
    r = Relation("r", [("k", "int"), ("p", "str"), ("v", "int")],
                 [(1, None, 5)])
    with pytest.raises(IntegrationError):
        pivot(r, "k", "p", "v")
