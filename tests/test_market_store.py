"""Durable-store round trips: register → persist → cold-start replay.

The property under test is *bit-identical replay*: a market cold-started
from the store must answer exactly like the process that wrote it — same
``graph_version``, same column profiles (signatures included), same LSH
buckets, same join candidates and graph edges with their fan-out
estimates, same search and plan results.  Plus the service reads the store
answers directly: keyset-cursor listing and FTS dataset search.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataMarket
from repro.errors import InvalidRequestError
from repro.market.licensing import (
    ContextualIntegrityPolicy,
    License,
    LicenseKind,
)
from repro.platform import MarketStore, StoreError
from repro.relation import Column, Relation


def make_corpus(seed: int = 0, n_rows: int = 40):
    """A joinable corpus with mixed dtypes, NULLs and semantic tags."""
    rng = np.random.default_rng(seed)
    orders = Relation(
        "orders",
        [Column("order_id", "int"), Column("cust_id", "int"),
         Column("total", "float", semantic="price"),
         Column("rush", "bool")],
        [
            (i, i % 7,
             None if i % 11 == 10 else float(rng.normal()) * 10.0,
             bool(i % 2))
            for i in range(n_rows)
        ],
    )
    customers = Relation(
        "customers",
        [Column("cust_id", "int"), Column("name", "str"),
         Column("city", "str", semantic="location")],
        [(i, f"name{i}", f"city{i % 3}") for i in range(7)],
    )
    cities = Relation(
        "cities",
        [Column("city", "str"), Column("population", "int")],
        [(f"city{i}", 1000 * (i + 1)) for i in range(3)],
    )
    return [orders, customers, cities]


def seeded_store_market(tmp_path, seed: int = 0):
    path = tmp_path / "market.db"
    market = DataMarket(store=str(path))
    for rel in make_corpus(seed):
        market.register_dataset(rel, seller="acme", reserve_price=2.0)
    return market, path


def profile_record(market, dataset):
    """Comparable full rendering of one dataset's profile state."""
    profile = market.metadata.snapshot(dataset).profile
    return [
        (
            cp.dataset, cp.column, cp.dtype, cp.semantic,
            cp.distinct_fraction, cp.content_hash,
            cp.signature.num_perm, cp.signature.seed, cp.signature.count,
            tuple(int(v) for v in cp.signature.signature),
            None if cp.numeric is None else cp.numeric.to_dict(),
            cp.categorical.to_dict(),
        )
        for cp in profile.columns
    ]


# ---------------------------------------------------------------------------
# cold-start replay is bit-identical
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2])
def test_cold_start_replay_is_bit_identical(tmp_path, seed):
    live, path = seeded_store_market(tmp_path, seed)
    replayed = DataMarket(store=str(path))

    assert replayed.graph_version == live.graph_version
    assert replayed.datasets == live.datasets
    for ds in live.datasets:
        assert profile_record(replayed, ds) == profile_record(live, ds)
        assert (
            replayed.metadata.relation(ds).rows
            == live.metadata.relation(ds).rows
        )
        assert replayed.index.dataset_candidates(ds) == \
            live.index.dataset_candidates(ds)
        assert replayed.index.dataset_edges(ds) == \
            live.index.dataset_edges(ds)
    assert (
        replayed.index.component_fingerprints()
        == live.index.component_fingerprints()
    )


@pytest.mark.parametrize("seed", [0, 3])
def test_replayed_search_and_plan_answers_match(tmp_path, seed):
    live, path = seeded_store_market(tmp_path, seed)
    replayed = DataMarket(store=str(path))
    attrs = ["total", "name", "population"]

    s_live = live.search(attrs)
    s_new = replayed.search(attrs)
    assert s_live.as_of == s_new.as_of
    assert s_live.hits == s_new.hits

    p_live = live.plan(attrs)
    p_new = replayed.plan(attrs)
    assert p_live.as_of == p_new.as_of
    assert len(p_live.mashups) == len(p_new.mashups)
    for a, b in zip(p_live.mashups, p_new.mashups):
        assert a.plan.describe() == b.plan.describe()
        assert a.relation.rows == b.relation.rows


def test_lsh_buckets_table_matches_live_banding(tmp_path):
    """The persisted band keys are exactly the ones the live index derives
    from each signature — buckets reconstruct deterministically."""
    live, path = seeded_store_market(tmp_path)
    import sqlite3

    conn = sqlite3.connect(path)
    stored = {
        (ds, col, band): key
        for ds, col, band, key in conn.execute(
            "SELECT dataset, column_name, band, band_key FROM lsh_buckets"
        )
    }
    conn.close()
    expected = {}
    for ds in live.datasets:
        for cp in live.metadata.snapshot(ds).profile.columns:
            for band, key in enumerate(live.index.lsh_band_keys(cp.signature)):
                expected[(ds, cp.column, band)] = ",".join(
                    str(v) for v in key
                )
    assert stored == expected


def test_updates_and_retires_replay_to_final_state(tmp_path):
    live, path = seeded_store_market(tmp_path)
    orders2 = Relation(
        "orders",
        [Column("order_id", "int"), Column("cust_id", "int"),
         Column("total", "float", semantic="price")],
        [(i, i % 7, float(i)) for i in range(25)],
    )
    live.update_dataset(orders2, "acme", reserve_price=9.0)
    live.retire_dataset("cities")

    replayed = DataMarket(store=str(path))
    assert replayed.graph_version == live.graph_version
    assert replayed.datasets == ["customers", "orders"]
    assert replayed.metadata.snapshot("orders").version == 2
    assert replayed.arbiter.reserve_price_of("orders") == 9.0
    for ds in replayed.datasets:
        assert profile_record(replayed, ds) == profile_record(live, ds)


def test_license_and_policy_round_trip(tmp_path):
    path = tmp_path / "market.db"
    market = DataMarket(store=str(path))
    license = License(
        kind=LicenseKind.EXCLUSIVE, exclusivity_tax_rate=0.4,
        max_licensees=2,
    )
    policy = ContextualIntegrityPolicy.of("research", "audit")
    market.register_dataset(
        make_corpus()[0], seller="acme",
        reserve_price=5.0, license=license, policy=policy,
    )
    replayed = DataMarket(store=str(path))
    assert replayed.licenses.license_of("orders") == license
    assert replayed.licenses.policy_of("orders") == policy
    assert replayed.licenses.owner_of("orders") == "acme"
    assert replayed.arbiter.reserve_price_of("orders") == 5.0


def test_exotic_cells_round_trip_via_pickle_payload(tmp_path):
    path = tmp_path / "market.db"
    market = DataMarket(store=str(path))
    fused = Relation(
        "fused",
        [Column("k", "int"), Column("blob", "any")],
        [(i, ("multi", i)) for i in range(12)],
    )
    market.register_dataset(fused, seller="acme")
    replayed = DataMarket(store=str(path))
    assert replayed.metadata.relation("fused").rows == fused.rows


# ---------------------------------------------------------------------------
# plan-cache persistence
# ---------------------------------------------------------------------------

def test_plan_cache_replays_warm(tmp_path):
    live, path = seeded_store_market(tmp_path)
    attrs = ["total", "name"]
    cold = live.plan(attrs)
    assert cold.cached is False
    live.persist_plan_cache()

    replayed = DataMarket(store=str(path))
    warm = replayed.plan(attrs)
    assert warm.cached is True
    assert warm.as_of == cold.as_of
    for a, b in zip(cold.mashups, warm.mashups):
        assert a.plan.describe() == b.plan.describe()
        assert a.relation.rows == b.relation.rows


def test_stale_plan_cache_rows_are_pruned_by_later_deltas(tmp_path):
    live, path = seeded_store_market(tmp_path)
    live.plan(["total", "name"])
    live.persist_plan_cache()
    stale_version = live.graph_version
    live.register_dataset(
        Relation("extra", [Column("cust_id", "int")],
                 [(i,) for i in range(7)]),
        seller="acme",
    )
    assert live.graph_version > stale_version
    replayed = DataMarket(store=str(path))
    # the delta pruned the stale rows; the replayed cache starts cold
    assert replayed.plan(["total", "name"]).cached is False


# ---------------------------------------------------------------------------
# service reads
# ---------------------------------------------------------------------------

def test_keyset_cursor_listing_pages_without_overlap(tmp_path):
    live, path = seeded_store_market(tmp_path)
    store = live.store
    seen, cursor, pages = [], None, 0
    while True:
        page, cursor = store.list_datasets(limit=2, cursor=cursor)
        seen.extend(r["dataset"] for r in page)
        pages += 1
        if cursor is None:
            break
        assert len(page) == 2
    assert pages >= 2
    assert sorted(seen) == live.datasets
    assert len(seen) == len(set(seen))
    times = None
    page, _ = store.list_datasets(limit=10)
    times = [r["logical_time"] for r in page]
    assert times == sorted(times)


def test_malformed_cursor_rejected(tmp_path):
    # typed InvalidRequestError (not StoreError/sqlite) so the HTTP
    # gateway can map listing misuse to 422 instead of a 503
    live, _ = seeded_store_market(tmp_path)
    with pytest.raises(InvalidRequestError):
        live.store.list_datasets(cursor="not-a-cursor")
    with pytest.raises(InvalidRequestError):
        live.store.list_datasets(limit=0)
    with pytest.raises(InvalidRequestError):
        live.store.list_datasets(limit="10")
    with pytest.raises(InvalidRequestError):
        live.store.list_datasets(cursor="not-an-int|x", sort="registered")
    with pytest.raises(InvalidRequestError):
        live.store.list_datasets(cursor="not-a-float|x", sort="reserve")


def test_unknown_sort_key_rejected(tmp_path):
    live, _ = seeded_store_market(tmp_path)
    with pytest.raises(InvalidRequestError, match="unknown sort key"):
        live.store.list_datasets(sort="sellerz")


def test_sorted_listing_orders_and_pages(tmp_path):
    live, _ = seeded_store_market(tmp_path)
    store = live.store

    def drain(sort: str, limit: int = 2) -> list[dict]:
        rows, cursor = [], None
        while True:
            page, cursor = store.list_datasets(
                limit=limit, cursor=cursor, sort=sort
            )
            rows.extend(page)
            if cursor is None:
                return rows

    by_name = drain("name")
    assert [r["dataset"] for r in by_name] == sorted(live.datasets)
    by_rows = drain("rows")
    assert [r["rows"] for r in by_rows] == sorted(r["rows"] for r in by_rows)
    by_reserve = drain("reserve")
    reserves = [r["reserve_price"] for r in by_reserve]
    assert reserves == sorted(reserves)
    # every order lists each dataset exactly once
    for rows in (by_name, by_rows, by_reserve):
        names = [r["dataset"] for r in rows]
        assert sorted(names) == sorted(live.datasets)


def test_fts_search_finds_by_column_and_semantic(tmp_path):
    live, _ = seeded_store_market(tmp_path)
    store = live.store
    if not store.has_fts:
        pytest.skip("linked sqlite lacks FTS5")
    assert [h["dataset"] for h in store.search_datasets("population")] \
        == ["cities"]
    hits = {h["dataset"] for h in store.search_datasets("location")}
    assert hits == {"customers"}  # semantic tag, not a column name
    assert store.search_datasets("no_such_token") == []
    # quoting: a query with FTS operators must not raise
    assert isinstance(store.search_datasets('city AND "x'), list)


def test_schema_version_mismatch_refused(tmp_path):
    path = tmp_path / "market.db"
    MarketStore(path)
    import sqlite3

    conn = sqlite3.connect(path)
    conn.execute(
        "UPDATE store_meta SET value = '999' WHERE key = 'schema_version'"
    )
    conn.commit()
    conn.close()
    with pytest.raises(StoreError):
        MarketStore(path)
