"""The lazy relation algebra: tree construction, engine bit-identity.

The columnar engine must be **bit-identical** to the iteration oracle —
same rows, same row order, same schema, same relation name, and equal
provenance expressions — on arbitrary operator trees, including null keys
and non-ASCII strings.  The randomized tests here build such trees from a
seeded generator and compare both engines node-for-node, with and without
the selection-pushdown optimizer.
"""

import dataclasses
import random

import pytest

from repro.errors import (
    ReproDeprecationWarning,
    SchemaError,
    UnknownColumnError,
)
from repro.relation import (
    Column,
    ColumnarEngine,
    IterationEngine,
    Join,
    LeafRelation,
    Processor,
    Relation,
    Select,
    get_engine,
    push_down,
)

ITER = IterationEngine()
COL = ColumnarEngine()
COL_RAW = ColumnarEngine(optimize=False)


def orders():
    return Relation(
        "orders",
        [Column("cid", "int"), Column("amount", "float"),
         Column("note", "str")],
        [(1, 10.0, "café"), (2, 20.0, None), (2, 25.0, "øre"),
         (None, 5.0, "名前"), (3, 7.5, "plain")],
    )


def customers():
    return Relation(
        "customers",
        [Column("cid", "int"), Column("city", "str")],
        [(1, "oslo"), (2, "rome"), (None, "nowhere"), (4, "bergen")],
    )


def cities():
    return Relation(
        "cities",
        [Column("city", "str"), Column("pop", "int")],
        [("oslo", 700_000), ("rome", 2_800_000), ("bergen", None)],
    )


def assert_bit_identical(tree):
    """Both engines agree on every observable of the result."""
    a = ITER.execute(tree)
    b = COL.execute(tree)
    c = COL_RAW.execute(tree)
    for other in (b, c):
        assert other.rows == a.rows
        assert other.schema == a.schema
        assert other.name == a.name
        assert other.provenance == a.provenance
    assert COL.count(tree) == len(a)
    assert ITER.count(tree) == len(a)
    return a


# -- construction-time validation -----------------------------------------


def test_factories_validate_like_eager_operators():
    leaf = orders().lazy()
    with pytest.raises(UnknownColumnError):
        leaf.project(["ghost"])
    with pytest.raises(UnknownColumnError):
        leaf.where(ghost=1)
    with pytest.raises(UnknownColumnError):
        leaf.select(lambda r: True, columns=["ghost"])
    with pytest.raises(SchemaError):
        leaf.rename({"ghost": "x"})
    with pytest.raises(SchemaError, match="no shared column"):
        orders().lazy().join(cities().lazy())
    with pytest.raises(SchemaError):
        leaf.extend(Column("cid", "int"), lambda r: 0)


def test_tree_nodes_are_frozen():
    leaf = orders().lazy()
    tree = leaf.project(["cid", "amount"]).where(cid=2).distinct()
    for node in (tree, tree.target, tree.target.target, leaf):
        with pytest.raises(dataclasses.FrozenInstanceError):
            node.target = leaf  # type: ignore[attr-defined]
    # but the payload slot is sanctioned mutability
    result = tree.collect()
    assert tree.payload is result


def test_trees_hash_and_compare_structurally():
    leaf = orders().lazy()
    a = leaf.project(["cid", "amount"]).where(cid=2)
    b = leaf.project(["cid", "amount"]).where(cid=2)
    assert a == b
    assert hash(a) == hash(b)
    assert a != leaf.project(["cid"]).where(cid=2)
    assert {a, b} == {a}
    # LeafRelation equality is identity: Relation.__eq__ is bag equality,
    # too coarse to identify a leaf inside a tree
    assert orders().lazy() != orders().lazy()
    assert leaf == leaf


def test_repr_round_trips():
    leaf = orders().lazy()
    a = leaf.project(["cid", "amount"]).where(cid=2).distinct()
    b = leaf.project(["cid", "amount"]).where(cid=2).distinct()
    assert repr(a) == repr(b)
    for op in ("Distinct", "Select", "Project", "LeafRelation", "'orders'"):
        assert op in repr(a)
    assert repr(a) != repr(leaf.project(["cid"]).where(cid=2).distinct())


def test_tree_structure_accessors():
    o, c, t = orders().lazy(), customers().lazy(), cities().lazy()
    tree = o.join(c, on=["cid"]).join(t, on=["city"]).project(["amount"])
    assert tree.leaves() == (o, c, t)
    assert tree.depth() == 4
    assert tree.name == "orders⋈customers⋈cities"
    assert tree.columns == ("amount",)


def test_payload_memoizes_across_engines():
    tree = orders().lazy().where(cid=2)
    first = tree.collect("columnar")
    assert tree.collect("iteration") is first  # payload serves all engines
    assert Processor("iteration").count(tree) == 2


def test_unknown_engine_name_rejected():
    with pytest.raises(SchemaError, match="unknown execution engine"):
        get_engine("vectorized")


def test_rows_keyword_is_deprecated():
    # positional rows are the supported entry point: no warning
    Relation("d", [Column("x", "int")], [(1,)])
    # the mutation-era keyword still works but warns
    with pytest.warns(ReproDeprecationWarning, match="rows"):
        rel = Relation("d", [Column("x", "int")], rows=[(1,), (2,)])
    assert rel.rows == ((1,), (2,))
    with pytest.raises(TypeError, match="unexpected keyword"):
        Relation("d", [Column("x", "int")], bogus=[(1,)])


# -- hand-written engine equivalences -------------------------------------


def test_join_pipeline_bit_identical():
    tree = (
        orders().lazy()
        .join(customers().lazy(), on=["cid"])
        .join(cities().lazy(), on=["city"], keep_right=True)
        .where(city="rome")
        .project(["amount", "city", "pop"])
        .rename({"pop": "population"})
        .relabel("rome_orders")
    )
    out = assert_bit_identical(tree)
    assert out.name == "rome_orders"
    assert out.rows == ((20.0, "rome", 2_800_000), (25.0, "rome", 2_800_000))
    # null join keys never match, on either side
    assert all("nowhere" not in row for row in out.rows)


def test_distinct_extend_predicate_bit_identical():
    tree = (
        orders().lazy()
        .project(["cid"])
        .distinct()
        .extend(Column("cid2", "any"), lambda r: None if r["cid"] is None
                else r["cid"] * 2, columns=["cid"])
        .select(lambda r: r["cid2"] is None or r["cid2"] > 2,
                columns=["cid2"])
    )
    out = assert_bit_identical(tree)
    assert set(out.column("cid")) == {2, None, 3}


def test_pushdown_rewrites_preserve_semantics():
    tree = (
        orders().lazy()
        .join(customers().lazy(), on=["cid"], keep_right=True)
        .where(city="rome", cid=2)
        .project(["amount", "city"])
    )
    optimized = push_down(tree)
    assert ITER.execute(optimized).rows == ITER.execute(tree).rows
    # the equality select was split and sunk below the join: no Select
    # remains above a Join, but Selects exist inside the join inputs
    def has_select_above_join(node, above=True):
        if isinstance(node, Select) and above:
            return True
        below = above and not isinstance(node, Join)
        return any(has_select_above_join(k, below) for k in node.children())

    def count_selects(node):
        return isinstance(node, Select) + sum(
            count_selects(k) for k in node.children()
        )

    assert not has_select_above_join(optimized)
    assert count_selects(optimized) == 2  # cid→orders side, city→customers


# -- randomized trees ------------------------------------------------------

POOL = (orders, customers, cities)


def random_tree(rng, max_ops=8):
    """Grow a random operator tree over the shared-key leaf pool."""
    tree = rng.choice(POOL)().lazy()
    for _ in range(rng.randrange(2, max_ops)):
        op = rng.randrange(7)
        try:
            if op == 0:
                names = [
                    n for n in tree.columns if rng.random() < 0.7
                ]
                tree = tree.project(names or list(tree.columns[:1]))
            elif op == 1:
                col = rng.choice(tree.columns)
                values = {row[tree.columns.index(col)]
                          for row in ITER.execute(tree).rows}
                if not values:
                    continue
                value = rng.choice(sorted(values, key=repr))
                tree = tree.where(**{col: value})
            elif op == 2:
                col = rng.choice(tree.columns)
                tree = tree.select(
                    lambda r, _c=col: r[_c] is not None, columns=[col]
                )
            elif op == 3:
                tree = tree.distinct()
            elif op == 4:
                col = rng.choice(tree.columns)
                tree = tree.rename({col: f"{col}_x"})
            elif op == 5:
                col = rng.choice(tree.columns)
                tree = tree.extend(
                    Column(f"d{tree.depth()}", "any"),
                    lambda r, _c=col: (None if r[_c] is None
                                       else f"v:{r[_c]}"),
                    columns=[col],
                )
            else:
                other = rng.choice(POOL)().lazy()
                shared = [n for n in tree.columns if n in other.schema]
                if not shared:
                    continue
                tree = tree.join(
                    other, on=shared,
                    keep_right=rng.random() < 0.5,
                )
        except SchemaError:
            continue  # e.g. suffixed name clash; skip the op
    return tree


@pytest.mark.parametrize("seed", range(12))
def test_random_trees_bit_identical(seed):
    rng = random.Random(seed)
    for _ in range(4):
        tree = random_tree(rng)
        assert_bit_identical(tree)


@pytest.mark.parametrize("seed", range(12, 18))
def test_random_trees_pushdown_equivalent(seed):
    rng = random.Random(seed)
    for _ in range(3):
        tree = random_tree(rng)
        baseline = ITER.execute(tree)
        rewritten = push_down(tree)
        out = ITER.execute(rewritten)
        assert out.rows == baseline.rows
        assert out.schema == baseline.schema
        assert out.provenance == baseline.provenance


@pytest.mark.parametrize("seed", range(18, 22))
def test_random_trees_hash_stable(seed):
    rng = random.Random(seed)
    tree = random_tree(rng)
    assert isinstance(hash(tree), int)
    assert tree == tree
    assert isinstance(tree, LeafRelation) or tree.children()
