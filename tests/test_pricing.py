"""Tests for query pricing, revenue optimization, tatonnement, ε-pricing."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PricingError
from repro.pricing import (
    ArbitrageFreePricer,
    NaivePricer,
    PrivacyPriceMenu,
    bundle,
    clearing_price_bounds,
    demand_from_valuations,
    exhaustive_arbitrage_search,
    myerson_reserve,
    myerson_reserve_exponential,
    myerson_reserve_uniform,
    optimal_posted_price,
    revenue_curve,
    tatonnement,
    virtual_value,
)
from repro.privacy import PrivacyAccountant


# -- arbitrage-free query pricing ------------------------------------------------


@pytest.fixture
def bundles():
    return [
        bundle("col_a", ["a"], 10.0),
        bundle("col_b", ["b"], 10.0),
        bundle("col_c", ["c"], 10.0),
        bundle("combo_abc", ["a", "b", "c"], 40.0),  # overpriced bundle
        bundle("combo_ab", ["a", "b"], 15.0),  # discounted pair
    ]


def test_cover_pricing_picks_cheapest(bundles):
    pricer = ArbitrageFreePricer(bundles)
    assert pricer.price(["a"]) == 10.0
    assert pricer.price(["a", "b"]) == 15.0  # combo beats 2 singles
    assert pricer.price(["a", "b", "c"]) == 25.0  # combo_ab + col_c < 40
    assert pricer.price([]) == 0.0


def test_cover_pricing_unknown_atom(bundles):
    with pytest.raises(PricingError, match="not offered"):
        ArbitrageFreePricer(bundles).price(["zzz"])


def test_price_with_cover_returns_bundles(bundles):
    cost, cover = ArbitrageFreePricer(bundles).price_with_cover(
        ["a", "b", "c"]
    )
    assert cost == 25.0
    assert {b.name for b in cover} == {"combo_ab", "col_c"}


def test_arbitrage_detection(bundles):
    pricer = ArbitrageFreePricer(bundles)
    opportunities = pricer.arbitrage_opportunities()
    names = {b.name for b, _alt in opportunities}
    assert "combo_abc" in names  # 40 > 25 cover
    assert not pricer.is_arbitrage_free_pricelist()
    sane = ArbitrageFreePricer(
        [bundle("a", ["a"], 10.0), bundle("b", ["b"], 5.0)]
    )
    assert sane.is_arbitrage_free_pricelist()


def test_closure_is_subadditive_and_monotone(bundles):
    pricer = ArbitrageFreePricer(bundles)
    violations = exhaustive_arbitrage_search(pricer, ["a", "b", "c"])
    assert violations == []  # closure prices admit no split arbitrage
    assert pricer.check_monotone_sample(["a", "b", "c"])


def test_naive_pricer_is_arbitrageable(bundles):
    naive = NaivePricer(bundles)
    assert naive.price(["a", "b", "c"]) == 40.0  # sticker price
    violations = exhaustive_arbitrage_search(naive, ["a", "b", "c"])
    assert violations  # buying parts is cheaper: arbitrage exists
    with pytest.raises(PricingError):
        naive.price(["a", "zzz"])


def test_bundle_validation():
    with pytest.raises(PricingError):
        bundle("x", [], 1.0)
    with pytest.raises(PricingError):
        bundle("x", ["a"], -1.0)
    with pytest.raises(PricingError):
        ArbitrageFreePricer([])
    with pytest.raises(PricingError):
        ArbitrageFreePricer([bundle("x", ["a"], 1.0), bundle("x", ["b"], 1.0)])


@settings(max_examples=30, deadline=None)
@given(
    prices=st.lists(st.floats(0.1, 50.0), min_size=3, max_size=3),
    pair_price=st.floats(0.1, 120.0),
)
def test_property_closure_never_exceeds_parts(prices, pair_price):
    """Property: closure price of a union <= sum of closure prices."""
    pricer = ArbitrageFreePricer(
        [
            bundle("a", ["a"], prices[0]),
            bundle("b", ["b"], prices[1]),
            bundle("c", ["c"], prices[2]),
            bundle("ab", ["a", "b"], pair_price),
        ]
    )
    whole = pricer.price(["a", "b", "c"])
    assert whole <= pricer.price(["a", "b"]) + pricer.price(["c"]) + 1e-9
    assert whole <= sum(prices) + 1e-9


# -- revenue optimization ----------------------------------------------------------


def test_optimal_posted_price():
    result = optimal_posted_price([1.0, 2.0, 3.0, 10.0])
    # candidates: 1*4=4, 2*3=6, 3*2=6, 10*1=10 -> price 10
    assert result.price == 10.0 and result.revenue == 10.0
    result = optimal_posted_price([5.0, 5.0, 5.0])
    assert result.price == 5.0 and result.revenue == 15.0
    with pytest.raises(PricingError):
        optimal_posted_price([])
    with pytest.raises(PricingError):
        optimal_posted_price([-1.0])


def test_revenue_curve():
    curve = revenue_curve([1.0, 2.0, 3.0], grid=[0.5, 1.5, 2.5, 3.5])
    assert curve[0] == (0.5, 1.5)  # 3 buyers * 0.5
    assert curve[-1] == (3.5, 0.0)


def test_myerson_uniform_closed_form():
    assert myerson_reserve_uniform(0.0, 1.0) == pytest.approx(0.5)
    assert myerson_reserve_uniform(0.8, 1.0) == pytest.approx(0.8)
    with pytest.raises(PricingError):
        myerson_reserve_uniform(1.0, 1.0)


def test_myerson_numeric_matches_uniform():
    cdf = lambda v: v
    pdf = lambda v: 1.0
    assert myerson_reserve(cdf, pdf, 1e-6, 1.0) == pytest.approx(0.5, abs=1e-6)


def test_myerson_numeric_matches_exponential():
    rate = 2.0
    cdf = lambda v: 1.0 - math.exp(-rate * v)
    pdf = lambda v: rate * math.exp(-rate * v)
    numeric = myerson_reserve(cdf, pdf, 1e-6, 10.0)
    assert numeric == pytest.approx(myerson_reserve_exponential(rate), abs=1e-6)


def test_virtual_value():
    assert virtual_value(0.5, lambda v: v, lambda v: 1.0) == pytest.approx(0.0)
    with pytest.raises(PricingError):
        virtual_value(0.5, lambda v: v, lambda v: 0.0)


# -- tatonnement --------------------------------------------------------------------


def test_tatonnement_converges_to_clearing_band():
    valuations = [float(v) for v in range(1, 101)]  # 1..100
    demand = demand_from_valuations(valuations)
    supply = 20
    result = tatonnement(demand, supply, initial_price=1.0)
    assert result.converged
    lower, upper = clearing_price_bounds(valuations, supply)
    assert lower * 0.9 <= result.price <= upper * 1.1


def test_tatonnement_tracks_demand_not_quality():
    # same per-buyer valuations, but the hot dataset has 25x the buyers
    hot = demand_from_valuations([float(v) for v in range(1, 51)])
    cold = demand_from_valuations([1.0, 2.0])
    p_hot = tatonnement(hot, supply=1, initial_price=0.5).price
    p_cold = tatonnement(cold, supply=1, initial_price=0.5).price
    assert p_hot > p_cold


def test_tatonnement_validates():
    demand = demand_from_valuations([1.0])
    with pytest.raises(PricingError):
        tatonnement(demand, supply=-1)
    with pytest.raises(PricingError):
        tatonnement(demand, supply=1, initial_price=0.0)
    with pytest.raises(PricingError):
        tatonnement(demand, supply=1, learning_rate=1.5)
    with pytest.raises(PricingError):
        demand_from_valuations([])


def test_clearing_price_bounds():
    lower, upper = clearing_price_bounds([1.0, 5.0, 9.0], supply=1)
    assert (lower, upper) == (5.0, 9.0)
    lower, upper = clearing_price_bounds([1.0, 5.0, 9.0], supply=3)
    assert (lower, upper) == (0.0, 1.0)
    with pytest.raises(PricingError):
        clearing_price_bounds([1.0], supply=2)


# -- privacy pricing ---------------------------------------------------------------


def test_privacy_menu_monotone_concave():
    menu = PrivacyPriceMenu("ds", clean_price=100.0, epsilon_half=1.0)
    p1, p2, p4 = (menu.price_for_epsilon(e) for e in (1.0, 2.0, 4.0))
    assert p1 < p2 < p4 < 100.0
    assert p2 - p1 > p4 - p2  # concave: early epsilon buys more
    assert menu.price_for_epsilon(1.0) == pytest.approx(50.0)


def test_privacy_menu_inverse():
    menu = PrivacyPriceMenu("ds", clean_price=100.0, epsilon_half=2.0)
    eps = menu.epsilon_for_budget(40.0)
    assert menu.price_for_epsilon(eps) == pytest.approx(40.0)
    with pytest.raises(PricingError):
        menu.epsilon_for_budget(150.0)
    with pytest.raises(PricingError):
        menu.epsilon_for_budget(0.0)


def test_privacy_menu_respects_accountant():
    menu = PrivacyPriceMenu("ds", clean_price=100.0)
    accountant = PrivacyAccountant()
    accountant.register("ds", 1.0)
    quote = menu.quote(0.5, accountant)
    assert quote.epsilon == 0.5
    with pytest.raises(PricingError, match="budget"):
        menu.quote(2.0, accountant)


def test_privacy_menu_validation():
    with pytest.raises(PricingError):
        PrivacyPriceMenu("ds", clean_price=-1.0)
    with pytest.raises(PricingError):
        PrivacyPriceMenu("ds", clean_price=1.0, epsilon_half=0.0)
    menu = PrivacyPriceMenu("ds", clean_price=1.0)
    with pytest.raises(PricingError):
        menu.price_for_epsilon(0.0)
