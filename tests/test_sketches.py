"""Unit + property tests for MinHash, LSH, and column summaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import (
    CategoricalSummary,
    LSHIndex,
    MinHash,
    NumericSummary,
    jaccard_exact,
    stable_hash,
)


def test_stable_hash_is_deterministic():
    assert stable_hash("hello") == stable_hash("hello")
    assert stable_hash(("a", 1)) == stable_hash(("a", 1))
    assert stable_hash("a") != stable_hash("b")


def test_minhash_identical_sets():
    a = MinHash.of(range(100))
    b = MinHash.of(range(100))
    assert a.jaccard(b) == pytest.approx(1.0)


def test_minhash_disjoint_sets():
    a = MinHash.of(range(100), num_perm=128)
    b = MinHash.of(range(1000, 1100), num_perm=128)
    assert a.jaccard(b) < 0.15


def test_minhash_estimates_overlap():
    a = MinHash.of(range(0, 100), num_perm=256)
    b = MinHash.of(range(50, 150), num_perm=256)
    exact = jaccard_exact(set(range(0, 100)), set(range(50, 150)))
    assert a.jaccard(b) == pytest.approx(exact, abs=0.12)


def test_minhash_empty_semantics():
    empty1, empty2 = MinHash(), MinHash()
    assert empty1.jaccard(empty2) == 1.0
    full = MinHash.of([1, 2, 3])
    assert empty1.jaccard(full) == 0.0


def test_minhash_merge_is_union():
    a = MinHash.of(range(0, 50), num_perm=128)
    b = MinHash.of(range(50, 100), num_perm=128)
    union = MinHash.of(range(0, 100), num_perm=128)
    assert a.merge(b).jaccard(union) == pytest.approx(1.0)


def test_minhash_width_mismatch():
    with pytest.raises(ValueError):
        MinHash(num_perm=32).jaccard(MinHash(num_perm=64))
    with pytest.raises(ValueError):
        MinHash(num_perm=32).merge(MinHash(num_perm=64))
    with pytest.raises(ValueError):
        MinHash(num_perm=0)


@settings(max_examples=25, deadline=None)
@given(
    a=st.sets(st.integers(0, 400), min_size=1, max_size=120),
    b=st.sets(st.integers(0, 400), min_size=1, max_size=120),
)
def test_minhash_property_estimate_close(a, b):
    """MinHash estimate stays within a coarse bound of exact Jaccard."""
    ma = MinHash.of(a, num_perm=256)
    mb = MinHash.of(b, num_perm=256)
    assert ma.jaccard(mb) == pytest.approx(jaccard_exact(a, b), abs=0.2)


def test_lsh_requires_divisible_bands():
    with pytest.raises(ValueError):
        LSHIndex(num_perm=64, bands=10)


def test_lsh_add_query():
    idx = LSHIndex(num_perm=64, bands=16)
    idx.add("x", MinHash.of(range(100)))
    idx.add("y", MinHash.of(range(50, 150)))
    idx.add("z", MinHash.of(range(5000, 5100)))
    hits = idx.query(MinHash.of(range(100)), min_jaccard=0.4)
    names = [k for k, _s in hits]
    assert names[0] == "x"
    assert "z" not in names
    assert len(idx) == 3 and "x" in idx


def test_lsh_duplicate_key_rejected():
    idx = LSHIndex()
    idx.add("x", MinHash.of([1]))
    with pytest.raises(KeyError):
        idx.add("x", MinHash.of([2]))


def test_lsh_similar_pairs():
    idx = LSHIndex(num_perm=64, bands=32)
    idx.add("a", MinHash.of(range(100)))
    idx.add("b", MinHash.of(range(10, 110)))
    idx.add("c", MinHash.of(range(9000, 9100)))
    pairs = idx.similar_pairs(min_jaccard=0.5)
    assert ({"a", "b"} in [set(p[:2]) for p in pairs])
    assert all("c" not in p[:2] for p in pairs)


def test_lsh_signature_width_check():
    idx = LSHIndex(num_perm=64)
    with pytest.raises(ValueError):
        idx.add("x", MinHash.of([1], num_perm=32))


def test_numeric_summary():
    s = NumericSummary.of([1.0, 2.0, 3.0, None], bins=2)
    assert s.count == 3 and s.nulls == 1
    assert s.minimum == 1.0 and s.maximum == 3.0
    assert s.mean == pytest.approx(2.0)
    assert sum(s.bin_counts) == 3


def test_numeric_summary_empty():
    s = NumericSummary.of([None, None])
    assert s.count == 0 and s.nulls == 2
    assert np.isnan(s.mean)


def test_numeric_overlap():
    a = NumericSummary.of([0.0, 10.0])
    b = NumericSummary.of([5.0, 15.0])
    assert a.overlap(b) == pytest.approx(0.5)
    c = NumericSummary.of([100.0, 200.0])
    assert a.overlap(c) == 0.0
    point = NumericSummary.of([5.0, 5.0])
    assert point.overlap(b) == 1.0


def test_categorical_summary():
    s = CategoricalSummary.of(["a", "b", "a", None, "c"], top_k=2)
    assert s.count == 4 and s.nulls == 1 and s.distinct == 3
    assert s.top[0] == ("a", 2)
    assert len(s.top) == 2
    assert s.null_fraction == pytest.approx(0.2)


def test_categorical_summary_empty():
    s = CategoricalSummary.of([])
    assert s.count == 0 and s.null_fraction == 0.0


# -- fuzz-style edge cases: incremental LSH maintenance + degenerate columns --


def test_minhash_empty_column():
    empty = MinHash.of([], num_perm=32)
    assert empty.count == 0
    assert empty.jaccard(MinHash.of([], num_perm=32)) == 1.0
    assert empty.jaccard(MinHash.of([1], num_perm=32)) == 0.0
    empty.update_many([])  # a no-op, not an error
    assert empty.count == 0


def test_minhash_single_value_and_all_duplicates():
    single = MinHash.of(["x"], num_perm=64)
    dups = MinHash(num_perm=64)
    dups.update_many(["x"] * 50)  # all-duplicate column
    # regression: duplicates used to inflate ``count`` (50 here), skewing
    # the emptiness semantics ``jaccard`` keys on — it now tracks distinct
    # insertions
    assert dups.count == 1
    assert single.jaccard(dups) == 1.0
    assert single.jaccard(MinHash.of(["y"], num_perm=64)) == 0.0


def test_minhash_count_tracks_distinct_insertions():
    mh = MinHash(num_perm=32)
    mh.update_many(["a", "a", "b", "b", "b"])
    assert mh.count == 2
    mh.update_many(["c"] * 10)
    assert mh.count == 3
    # an all-duplicate merge partner keeps the union non-empty, not "50 big"
    other = MinHash(num_perm=32)
    other.update_many(["a"] * 7)
    assert other.count == 1
    assert mh.merge(other).count == 4  # upper bound on distinct insertions
    assert mh.jaccard(other) > 0.0


def test_lsh_indexes_degenerate_signatures():
    """Empty/single-value signatures are legal index entries: empties
    collide only with empties, and removal prunes their buckets."""
    idx = LSHIndex(num_perm=16, bands=16)
    empty_a, empty_b = MinHash(num_perm=16), MinHash(num_perm=16)
    single = MinHash.of(["only"], num_perm=16)
    idx.add("empty_a", empty_a)
    idx.add("empty_b", empty_b)
    idx.add("single", single)
    assert idx.candidates(empty_a) == {"empty_a", "empty_b"}
    assert "single" not in idx.candidates(empty_a)
    idx.remove("empty_b")
    assert idx.candidates(empty_a) == {"empty_a"}
    idx.remove("empty_a")
    idx.remove("single")
    assert len(idx) == 0 and idx.candidates(single) == set()


def test_lsh_remove_unknown_key_is_an_error():
    idx = LSHIndex(num_perm=16, bands=4)
    with pytest.raises(KeyError):
        idx.remove("ghost")
    idx.add("x", MinHash.of([1], num_perm=16))
    idx.remove("x")
    with pytest.raises(KeyError):
        idx.remove("x")  # double-remove


def test_lsh_candidates_width_check():
    idx = LSHIndex(num_perm=32, bands=8)
    with pytest.raises(ValueError):
        idx.candidates(MinHash.of([1], num_perm=16))


def _naive_collisions(sigs: dict, query: MinHash, bands: int, rows: int):
    """Reference banding: any exactly matching band is a collision."""
    out = set()
    for key, sig in sigs.items():
        for band in range(bands):
            lo = band * rows
            if tuple(sig.signature[lo:lo + rows]) == tuple(
                query.signature[lo:lo + rows]
            ):
                out.add(key)
                break
    return out


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from("abcdefgh"), st.booleans()),
        max_size=40,
    ),
    query_key=st.sampled_from("abcdefgh"),
    bands=st.sampled_from([1, 2, 4, 8, 16]),
)
def test_lsh_lifecycle_fuzz_matches_naive_reference(ops, query_key, bands):
    """Random add/remove churn: the banded index stays exactly equivalent
    to a naive mirror for candidates(), membership and key sets."""
    sigs = {
        k: MinHash.of(range(i * 6, i * 6 + 18), num_perm=16)
        for i, k in enumerate("abcdefgh")
    }
    sigs["h"] = MinHash(num_perm=16)  # one empty signature in the pool
    idx = LSHIndex(num_perm=16, bands=bands)
    mirror: dict = {}
    for key, add in ops:
        if add:
            if key in mirror:
                with pytest.raises(KeyError):
                    idx.add(key, sigs[key])
            else:
                idx.add(key, sigs[key])
                mirror[key] = sigs[key]
        else:
            if key in mirror:
                idx.remove(key)
                del mirror[key]
            else:
                with pytest.raises(KeyError):
                    idx.remove(key)
    assert set(idx.keys()) == set(mirror)
    assert len(idx) == len(mirror)
    query = sigs[query_key]
    assert idx.candidates(query) == _naive_collisions(
        mirror, query, bands, 16 // bands
    )
