"""Columnar ingest fast path vs the scalar reference oracle.

The tentpole guarantee: profiling, sketching and hashing through the
memoized columnar view produce **bit-identical** outputs to the
value-at-a-time scalar implementations, over randomized dtypes and edge
shapes (nulls, non-ASCII strings, empty columns/relations, ``any``-typed
containers)."""

from __future__ import annotations

import hashlib
from collections import Counter

import numpy as np
import pytest

from repro.discovery.profiler import (
    column_content_hash,
    name_similarity,
    profile_column,
    profile_table,
    set_columnar_profiling,
)
from repro.relation import Column, Relation
from repro.sketches import CategoricalSummary, MinHash
from repro.sketches.minhash import (
    _VECTORIZE_MIN,
    _hash_token,
    _hash_token_batch,
    _TOKEN_CACHE,
    hash_tokens,
)

# ---------------------------------------------------------------------------
# randomized relation generator
# ---------------------------------------------------------------------------

_WORDS = [
    "oslo", "rome", "lima", "kyiv", "pune", "café", "außen", "ναι",
    "data\x1fmarket", "a'b\"c", "", " ", "x" * 40,
]


def _random_value(rng: np.random.Generator, dtype: str):
    if rng.random() < 0.15:
        return None
    if dtype == "int":
        return int(rng.integers(-1000, 1000))
    if dtype == "float":
        return float(np.round(rng.normal() * 100, 3))
    if dtype == "str":
        return _WORDS[int(rng.integers(len(_WORDS)))] + str(
            int(rng.integers(30))
        )
    if dtype == "bool":
        return bool(rng.integers(2))
    # "any": mixed scalars and containers
    choice = int(rng.integers(4))
    if choice == 0:
        return [int(rng.integers(5)), "nested"]
    if choice == 1:
        return {"k": int(rng.integers(5))}
    if choice == 2:
        return float(rng.normal())
    return _WORDS[int(rng.integers(len(_WORDS)))]


def random_relation(seed: int, n_rows: int | None = None) -> Relation:
    rng = np.random.default_rng(seed)
    dtypes = ["int", "float", "str", "bool", "any"]
    n_cols = int(rng.integers(1, 7))
    cols = [
        Column(
            f"col_{i}",
            dtypes[int(rng.integers(len(dtypes)))],
            semantic="tag" if rng.random() < 0.2 else None,
        )
        for i in range(n_cols)
    ]
    if n_rows is None:
        n_rows = int(rng.integers(0, 60))
    rows = [
        tuple(_random_value(rng, c.dtype) for c in cols)
        for _ in range(n_rows)
    ]
    return Relation(f"rel_{seed}", cols, rows)


def assert_profiles_identical(a, b):
    assert a.dataset == b.dataset
    assert a.n_rows == b.n_rows
    assert a.content_hash == b.content_hash
    assert len(a.columns) == len(b.columns)
    for ca, cb in zip(a.columns, b.columns):
        assert ca.column == cb.column
        assert ca.content_hash == cb.content_hash, ca.column
        assert ca.signature.digest() == cb.signature.digest(), ca.column
        assert ca.signature.count == cb.signature.count, ca.column
        # repr-compare: NumericSummary of an empty column carries NaNs,
        # which dataclass equality would reject
        assert repr(ca.numeric) == repr(cb.numeric), ca.column
        assert ca.categorical == cb.categorical, ca.column
        assert ca.distinct_fraction == cb.distinct_fraction, ca.column


# ---------------------------------------------------------------------------
# profiling equivalence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(25))
def test_columnar_profile_bit_identical_to_scalar_oracle(seed):
    relation = random_relation(seed)
    columnar = profile_table(relation, columnar=True)
    scalar = profile_table(relation, columnar=False)
    assert_profiles_identical(columnar, scalar)


@pytest.mark.parametrize("seed", range(8))
def test_columnar_profile_identical_on_large_relations(seed):
    """Relations past the single-counting-pass threshold (64 rows) engage
    the fused Counter/dedup machinery — the small-relation tests above
    take the direct per-value route, so both must be pinned."""
    relation = random_relation(seed, n_rows=150)
    columnar = profile_table(relation, columnar=True)
    scalar = profile_table(relation, columnar=False)
    assert_profiles_identical(columnar, scalar)


def test_subclass_values_disable_dedup_and_stay_identical():
    """Values that compare equal to builtins but repr differently (IntEnum,
    str subclasses) must not be collapsed by the value-keyed dedup pass —
    both modes and both row orders must agree."""
    from enum import IntEnum

    class Color(IntEnum):
        RED = 1

    class Tag(str):
        def __repr__(self):  # pragma: no cover - repr only
            return f"Tag({str.__repr__(self)})"

    for rows in (
        [(Color.RED,)] * 40 + [(1,)] * 40,
        [(1,)] * 40 + [(Color.RED,)] * 40,
    ):
        relation = Relation("enums", [("c", "int")], rows)
        assert column_content_hash(relation, "c", columnar=True) == (
            column_content_hash(relation, "c", columnar=False)
        )
        assert_profiles_identical(
            profile_table(relation, columnar=True),
            profile_table(relation, columnar=False),
        )
    tagged = Relation(
        "tags", [("s", "str")],
        [(Tag("x"),)] * 40 + [("x",)] * 40,
    )
    assert column_content_hash(tagged, "s", columnar=True) == (
        column_content_hash(tagged, "s", columnar=False)
    )


def test_columnar_profile_identical_on_duplicate_heavy_columns():
    """Dup-heavy repr-stable columns exercise the value->repr fan-out."""
    rng = np.random.default_rng(41)
    cols = [
        Column("cat", "str"), Column("small_int", "int"),
        Column("flag", "bool"), Column("metric", "float"),
    ]
    vocab = ["red", "green", "blue", None]
    rows = [
        (
            vocab[int(rng.integers(4))],
            int(rng.integers(5)) if rng.random() > 0.1 else None,
            bool(rng.integers(2)),
            float(round(rng.normal(), 1)),
        )
        for _ in range(400)
    ]
    relation = Relation("dups", cols, rows)
    assert_profiles_identical(
        profile_table(relation, columnar=True),
        profile_table(relation, columnar=False),
    )


def test_profile_of_empty_relation_matches():
    relation = Relation("empty", [("a", "int"), ("b", "str")], [])
    assert_profiles_identical(
        profile_table(relation, columnar=True),
        profile_table(relation, columnar=False),
    )


def test_profile_of_all_null_column_matches():
    relation = Relation(
        "nulls", [("a", "float"), ("b", "str")],
        [(None, None)] * 8,
    )
    columnar = profile_table(relation, columnar=True)
    assert_profiles_identical(
        columnar, profile_table(relation, columnar=False)
    )
    assert columnar.column("a").distinct_fraction == 0.0
    assert columnar.column("a").categorical.nulls == 8


def test_column_content_hash_matches_legacy_stream():
    """Both modes reproduce the historical per-value BLAKE2b stream."""
    for seed in range(8):
        relation = random_relation(seed)
        for name in relation.columns:
            h = hashlib.blake2b(digest_size=16)
            for v in relation.column(name):
                h.update(repr(v).encode())
                h.update(b"\x1f")
            legacy = h.hexdigest()
            assert column_content_hash(relation, name, columnar=True) == legacy
            assert column_content_hash(relation, name, columnar=False) == legacy


def test_profile_signature_equals_minhash_of_raw_values():
    """Profiler tokens are exactly the values' reprs, so a signature built
    from the raw non-null values through the public API must agree."""
    relation = random_relation(3, n_rows=40)
    profile = profile_table(relation, columnar=True)
    for name in relation.columns:
        non_null = [v for v in relation.column(name) if v is not None]
        assert profile.column(name).signature.digest() == MinHash.of(
            non_null, num_perm=64
        ).digest()


def test_set_columnar_profiling_flips_module_default():
    relation = random_relation(5)
    previous = set_columnar_profiling(False)
    try:
        scalar_default = profile_table(relation)
    finally:
        set_columnar_profiling(previous)
    assert_profiles_identical(
        scalar_default, profile_table(relation, columnar=True)
    )


def test_profile_column_reuses_supplied_content_hash():
    relation = random_relation(7, n_rows=10)
    name = relation.columns[0]
    profile = profile_column(relation, name, content_hash="sentinel")
    assert profile.content_hash == "sentinel"


# ---------------------------------------------------------------------------
# vectorized token hashing
# ---------------------------------------------------------------------------

def test_hash_token_batch_bit_identical_to_scalar():
    rng = np.random.default_rng(11)
    tokens = [
        repr(_random_value(rng, dtype))
        for dtype in ("int", "float", "str", "any")
        for _ in range(40)
    ]
    tokens += ["", "\x1f", "a\x1fb", "é" * 10, "x" * 600, "'quoted'"]
    _TOKEN_CACHE.clear()
    batched = _hash_token_batch(tokens)
    _TOKEN_CACHE.clear()
    scalar = [_hash_token(t) for t in tokens]
    assert batched.tolist() == scalar


def test_hash_tokens_routes_agree_across_batch_sizes():
    rng = np.random.default_rng(13)
    universe = [f"tok_{int(rng.integers(1_000_000)):06d}" for _ in range(300)]
    small = universe[: _VECTORIZE_MIN - 1]
    _TOKEN_CACHE.clear()
    via_small = hash_tokens(small).tolist()
    _TOKEN_CACHE.clear()
    via_large = hash_tokens(universe).tolist()[: len(small)]
    assert via_small == via_large
    # memo round-trip: a second call is served from cache, identically
    assert hash_tokens(universe).tolist()[: len(small)] == via_small


def test_huge_batches_are_chunked_identically(monkeypatch):
    from repro.sketches import minhash as mh

    monkeypatch.setattr(mh, "_BATCH_CHUNK", 32)
    tokens = [f"tok_{i:05d}" for i in range(101)]
    _TOKEN_CACHE.clear()
    chunked = _hash_token_batch(tokens)
    _TOKEN_CACHE.clear()
    assert chunked.tolist() == [_hash_token(t) for t in tokens]


def test_non_ascii_batch_falls_back_consistently():
    tokens = [f"ключ_{i}" for i in range(_VECTORIZE_MIN + 10)]
    _TOKEN_CACHE.clear()
    batched = _hash_token_batch(tokens)
    _TOKEN_CACHE.clear()
    assert batched.tolist() == [_hash_token(t) for t in tokens]


def test_oversized_token_fallback_skips_memo(monkeypatch):
    from repro.sketches import minhash as mh

    monkeypatch.setattr(mh, "_MEMO_MAX_BATCH", 8)
    tokens = [f"t{i}" for i in range(_VECTORIZE_MIN + 6)] + ["x" * 600]
    _TOKEN_CACHE.clear()
    hashed = hash_tokens(tokens)
    # a one-shot batch routed around the memo must not populate it
    assert not _TOKEN_CACHE
    assert hashed.tolist() == [_hash_token(t) for t in tokens]


def test_any_dtype_cells_with_array_equality_profile_identically():
    """``any``-typed cells whose __eq__ is non-boolean (numpy arrays)
    must profile through both paths — null counting is identity-based."""
    relation = Relation(
        "arrays", [("x", "any"), ("y", "int")],
        [(np.array([1, 2]), 1), (None, 2), (np.array([3, 4]), None)],
    )
    assert_profiles_identical(
        profile_table(relation, columnar=True),
        profile_table(relation, columnar=False),
    )


def test_content_hash_alone_does_not_pin_text_caches():
    """Hashing a relation that is not mid-profiling (e.g. the arbiter
    fingerprinting a cached mashup) must not leave per-cell repr strings
    pinned on the relation."""
    relation = Relation(
        "plain", [("a", "int"), ("b", "str")],
        [(i, f"v{i % 7}") for i in range(100)],
    )
    legacy = _legacy_relation_content_hash(relation)
    assert relation.content_hash() == legacy
    view = relation._columnar
    assert view is not None and not view._reprs and not view._counts
    # profiling afterwards still works and agrees
    assert profile_table(relation).content_hash == legacy


# ---------------------------------------------------------------------------
# relation-level fast paths
# ---------------------------------------------------------------------------

def _legacy_relation_content_hash(relation: Relation) -> str:
    from repro.relation.relation import _freeze_row

    h = hashlib.sha256()
    h.update(repr(relation.schema).encode())
    for row in sorted(map(repr, map(_freeze_row, relation.rows))):
        h.update(row.encode())
    return h.hexdigest()


@pytest.mark.parametrize("seed", range(12))
def test_relation_content_hash_matches_legacy_and_memoizes(seed):
    relation = random_relation(seed)
    legacy = _legacy_relation_content_hash(relation)
    assert relation.content_hash() == legacy
    assert relation.content_hash() == legacy  # memoized second call


def test_single_column_relation_content_hash_matches_legacy():
    relation = Relation("one", [("a", "str")], [("x",), ("y",), ("x",)])
    assert relation.content_hash() == _legacy_relation_content_hash(relation)


def test_projection_and_column_match_row_loop():
    for seed in range(8):
        relation = random_relation(seed)
        names = list(relation.columns)[::-1][:2]
        projected = relation.project(names)
        idx = relation.schema.positions(names)
        assert list(projected.rows) == [
            tuple(row[i] for i in idx) for row in relation.rows
        ]
        assert projected.provenance == relation.provenance
        for name in relation.columns:
            i = relation.schema.position(name)
            assert relation.column(name) == [r[i] for r in relation.rows]


def test_project_empty_names_keeps_row_count():
    relation = random_relation(2, n_rows=5)
    projected = relation.project([])
    assert len(projected) == 5
    assert projected.rows == ((),) * 5


def test_distinct_fast_path_matches_freeze_path():
    rows = [(1, "a"), (1, "a"), (2, "b"), (1, "a"), (None, None)]
    scalar_rel = Relation("s", [("x", "int"), ("y", "str")], rows)
    any_rel = Relation("s", [("x", "any"), ("y", "any")], rows)
    ds, da = scalar_rel.distinct(), any_rel.distinct()
    assert ds.rows == da.rows
    assert [repr(p) for p in ds.provenance] == [repr(p) for p in da.provenance]


# ---------------------------------------------------------------------------
# satellite fixes: O(1) TableProfile.column, memoized name_similarity,
#                  heavy-hitter selection
# ---------------------------------------------------------------------------

def test_release_text_drops_and_rebuilds_caches():
    relation = random_relation(9, n_rows=100)
    view = relation.columnar
    before = {
        n: column_content_hash(relation, n) for n in relation.columns
    }
    assert view._reprs
    view.release_text()
    assert not view._reprs and not view._counts
    # rebuilt lazily, bit-identically
    after = {
        n: column_content_hash(relation, n) for n in relation.columns
    }
    assert after == before


def test_metadata_register_releases_text_caches():
    from repro.discovery.metadata import MetadataEngine

    relation = random_relation(4, n_rows=100)
    engine = MetadataEngine()
    engine.register(relation)
    view = relation._columnar
    assert view is not None
    assert not view._reprs and not view._counts
    assert relation.column(relation.columns[0]) is not None  # still works


def test_table_profile_column_lookup_is_mapping_backed():
    relation = random_relation(1, n_rows=12)
    profile = profile_table(relation)
    for c in profile.columns:
        assert profile.column(c.column) is c
    with pytest.raises(KeyError):
        profile.column("nope")
    # the mapping is built once and reused
    assert profile._by_name is profile._by_name


def _reference_name_similarity(a: str, b: str) -> float:
    from difflib import SequenceMatcher

    na = a.lower().replace("-", "_").strip("_")
    nb = b.lower().replace("-", "_").strip("_")
    if na == nb:
        return 1.0
    tokens_a, tokens_b = set(na.split("_")), set(nb.split("_"))
    token_sim = (
        len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
        if tokens_a | tokens_b
        else 0.0
    )
    char_sim = SequenceMatcher(None, na, nb).ratio()
    return max(token_sim, char_sim)


def test_name_similarity_matches_unguarded_reference():
    # permuted token sets decide the max without SequenceMatcher
    assert name_similarity("user_id", "id_user") == 1.0
    assert name_similarity("User-ID", "user_id") == 1.0
    assert name_similarity("", "") == 1.0
    rng = np.random.default_rng(17)
    parts = ["user", "id", "name", "city", "event", "time", "score", "x"]
    for _ in range(300):
        a = "_".join(
            parts[int(i)] for i in rng.integers(len(parts), size=rng.integers(1, 4))
        )
        b = "-".join(
            parts[int(i)] for i in rng.integers(len(parts), size=rng.integers(1, 4))
        )
        assert name_similarity(a, b) == _reference_name_similarity(a, b)
        assert name_similarity(a, b) == name_similarity(a, b)  # memo stable


def test_of_counts_equals_full_sort_reference():
    rng = np.random.default_rng(23)
    for trial in range(40):
        n = int(rng.integers(1, 300))
        freq = Counter(
            {f"v{int(i):04d}": int(c) for i, c in zip(
                rng.choice(10_000, size=n, replace=False),
                rng.integers(1, 6, size=n),
            )}
        )
        got = CategoricalSummary.of_counts(freq, nulls=3)
        want_top = tuple(
            sorted(freq.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
        )
        assert got.top == want_top, trial
        assert got.count == sum(freq.values())
        assert got.distinct == n
        assert got.nulls == 3
        values = [v for v, c in freq.items() for _ in range(c)]
        assert got == CategoricalSummary.of(values + [None] * 3)
