"""Tests for auction/payment mechanisms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MechanismError
from repro.mechanisms import (
    Bid,
    ExPostMechanism,
    ExPostReport,
    GSPAuction,
    MyersonAuction,
    PostedPriceMechanism,
    RSOPAuction,
    VickreyAuction,
)


def bids(*amounts):
    return [Bid(f"b{i}", float(a)) for i, a in enumerate(amounts)]


# -- basics --------------------------------------------------------------------


def test_bid_validation():
    with pytest.raises(MechanismError):
        Bid("x", -1.0)


def test_duplicate_bidders_rejected():
    with pytest.raises(MechanismError, match="duplicate"):
        VickreyAuction().run([Bid("x", 1.0), Bid("x", 2.0)])


# -- Vickrey --------------------------------------------------------------------


def test_vickrey_single_item():
    out = VickreyAuction(k=1).run(bids(10, 7, 3))
    assert out.winners == ["b0"]
    assert out.payment_of("b0") == 7.0  # second price
    assert out.revenue == 7.0


def test_vickrey_k_unit_uniform_price():
    out = VickreyAuction(k=2).run(bids(10, 7, 3, 1))
    assert out.winners == ["b0", "b1"]
    assert out.payment_of("b0") == out.payment_of("b1") == 3.0


def test_vickrey_reserve():
    out = VickreyAuction(k=1, reserve=8.0).run(bids(10, 7))
    assert out.winners == ["b0"]
    assert out.payment_of("b0") == 8.0  # reserve binds over the 7 bid
    none = VickreyAuction(k=1, reserve=20.0).run(bids(10, 7))
    assert none.winners == []


def test_vickrey_fewer_bidders_than_units():
    out = VickreyAuction(k=5).run(bids(10, 7))
    assert len(out.winners) == 2
    assert out.revenue == 0.0  # no (k+1)-th bid, no reserve


def test_vickrey_truthfulness_dominant_strategy():
    """Misreporting never beats truthful bidding against fixed rivals."""
    rivals = bids(6, 4)
    true_value = 5.0
    def utility(bid_amount):
        out = VickreyAuction(k=1).run(rivals + [Bid("me", bid_amount)])
        if out.won("me"):
            return true_value - out.payment_of("me")
        return 0.0
    truthful = utility(true_value)
    for deviation in (0.0, 2.0, 4.5, 5.5, 7.0, 100.0):
        assert utility(deviation) <= truthful + 1e-12


def test_vickrey_validation():
    with pytest.raises(MechanismError):
        VickreyAuction(k=0)
    with pytest.raises(MechanismError):
        VickreyAuction(reserve=-1)


# -- GSP ------------------------------------------------------------------------


def test_gsp_positions_and_payments():
    auction = GSPAuction(slot_weights=(1.0, 0.5))
    out = auction.run(bids(10, 6, 2))
    assert out.allocations["b0"] == 1.0
    assert out.allocations["b1"] == 0.5
    assert "b2" not in out.allocations
    assert out.payment_of("b0") == 6.0  # next bid * weight 1.0
    assert out.payment_of("b1") == 2.0 * 0.5


def test_gsp_last_slot_pays_zero_without_next_bid():
    out = GSPAuction(slot_weights=(1.0,)).run(bids(5))
    assert out.payment_of("b0") == 0.0


def test_gsp_is_not_truthful():
    """Classic GSP counterexample: shading the bid increases utility."""
    auction = GSPAuction(slot_weights=(1.0, 0.8))
    rivals = [Bid("r1", 8.0), Bid("r2", 5.0)]
    value = 10.0
    def utility(amount):
        out = auction.run(rivals + [Bid("me", amount)])
        weight = out.allocations.get("me", 0.0)
        return value * weight - out.payment_of("me")
    # truthful: wins slot 1 (weight 1), pays 8 -> utility 2
    # shading to 6: wins slot 2 (weight .8), pays .8*5=4 -> utility 4
    assert utility(6.0) > utility(10.0)


def test_gsp_validation():
    with pytest.raises(MechanismError):
        GSPAuction(slot_weights=())
    with pytest.raises(MechanismError):
        GSPAuction(slot_weights=(0.5, 1.0))
    with pytest.raises(MechanismError):
        GSPAuction(slot_weights=(1.0, -0.5))


# -- Myerson -----------------------------------------------------------------------


def test_myerson_reserve_binds():
    out = MyersonAuction(reserve=5.0).run(bids(10, 3))
    assert out.winners == ["b0"]
    assert out.payment_of("b0") == 5.0
    out2 = MyersonAuction(reserve=5.0).run(bids(10, 8))
    assert out2.payment_of("b0") == 8.0
    assert MyersonAuction(reserve=20.0).run(bids(10)).winners == []
    with pytest.raises(MechanismError):
        MyersonAuction(reserve=-1.0)


# -- digital goods ------------------------------------------------------------------


def test_posted_price_serves_everyone_at_or_above():
    out = PostedPriceMechanism(price=5.0).run(bids(10, 5, 3))
    assert out.winners == ["b0", "b1"]
    assert out.revenue == 10.0
    with pytest.raises(MechanismError):
        PostedPriceMechanism(price=-1.0)


def test_rsop_truthful_prices_from_other_half():
    out = RSOPAuction(seed=3).run(bids(10, 9, 8, 7, 2, 1))
    # every winner pays a price computed from the opposite group
    assert out.revenue > 0
    for bidder, paid in out.payments.items():
        amount = next(b.amount for b in bids(10, 9, 8, 7, 2, 1)
                      if b.bidder == bidder)
        assert paid <= amount + 1e-9  # no winner pays above their bid


def test_rsop_edge_cases():
    assert RSOPAuction().run([]).winners == []
    lone = RSOPAuction().run([Bid("solo", 7.0)])
    assert lone.winners == ["solo"] and lone.revenue == 0.0


def test_rsop_competitive_with_optimal_posted_revenue():
    rng = np.random.default_rng(0)
    amounts = rng.uniform(1, 100, size=200)
    all_bids = [Bid(f"b{i}", float(a)) for i, a in enumerate(amounts)]
    from repro.pricing import optimal_posted_price

    opt = optimal_posted_price([b.amount for b in all_bids]).revenue
    revenue = RSOPAuction(seed=1).run(all_bids).revenue
    assert revenue >= 0.4 * opt  # comfortably within constant factor


# -- ex post -------------------------------------------------------------------------


def test_expost_truthful_config_condition():
    assert ExPostMechanism(audit_probability=0.3, penalty_multiplier=4).is_truthful_config()
    assert not ExPostMechanism(
        audit_probability=0.1, penalty_multiplier=2
    ).is_truthful_config()


def test_expost_truthful_report_maximizes_expected_utility():
    mech = ExPostMechanism(
        payment_share=0.5, audit_probability=0.3, penalty_multiplier=4.0
    )
    assert mech.best_report(true_value=10.0) == pytest.approx(10.0)
    # non-truthful config: best report is 0
    cheap = ExPostMechanism(
        payment_share=0.5, audit_probability=0.05, penalty_multiplier=2.0
    )
    assert cheap.best_report(true_value=10.0) == pytest.approx(0.0)


def test_expost_charges():
    mech = ExPostMechanism(
        payment_share=0.5, audit_probability=1.0, penalty_multiplier=4.0
    )
    rng = np.random.default_rng(0)
    honest = mech.charge(ExPostReport("h", 10.0, 10.0), rng)
    assert honest.total == pytest.approx(5.0)
    assert honest.penalty == 0.0
    liar = mech.charge(ExPostReport("l", 0.0, 10.0), rng)
    assert liar.audited and liar.penalty == pytest.approx(0.5 * 10 * 4)
    assert liar.total > honest.total  # lying cost more under audit


def test_expost_settle_and_validation():
    mech = ExPostMechanism()
    rng = np.random.default_rng(1)
    charges = mech.settle(
        [ExPostReport("a", 5.0, 5.0), ExPostReport("b", 2.0, 8.0)], rng
    )
    assert len(charges) == 2
    with pytest.raises(MechanismError):
        ExPostReport("x", -1.0, 1.0)
    with pytest.raises(MechanismError):
        ExPostMechanism(payment_share=0.0)
    with pytest.raises(MechanismError):
        ExPostMechanism(audit_probability=1.5)
    with pytest.raises(MechanismError):
        ExPostMechanism(penalty_multiplier=-1.0)
    with pytest.raises(MechanismError):
        mech.expected_utility(-1.0, 0.0)


@settings(max_examples=40, deadline=None)
@given(
    amounts=st.lists(
        st.floats(0.0, 100.0), min_size=2, max_size=12, unique=True
    )
)
def test_property_vickrey_winner_never_pays_above_bid(amounts):
    out = VickreyAuction(k=2).run(
        [Bid(f"b{i}", a) for i, a in enumerate(amounts)]
    )
    for bidder in out.winners:
        amount = amounts[int(bidder[1:])]
        assert out.payment_of(bidder) <= amount + 1e-9
