"""HTTP gateway: typed client ↔ server contract tests.

The properties under test:

* **taxonomy totality** — every ``MarketError`` subclass resolves to
  exactly one HTTP status (no subclass silently falls through to 500);
* **wire fidelity** — a :class:`MarketClient` driving a spawned gateway
  completes the full lifecycle (register → search → plan+collect →
  submit_wtp → run_round → retire) with results equal to an in-process
  façade fed the same operations, every response stamped ``as_of``;
* **edge enforcement** — missing/bad credentials are 401, foreign-seller
  mutations are 403, over-budget clients are 429 with ``Retry-After``,
  malformed bodies are 422;
* **snapshot reads** — a pinned search+plan over HTTP answers both
  against one graph version even while writers churn.
"""

from __future__ import annotations

import threading

import pytest

import repro.platform  # noqa: F401  (registers ServiceError/StoreError)
from repro import DataMarket
from repro.errors import (
    AuthenticationError,
    DatasetNotFoundError,
    DatasetOwnershipError,
    DuplicateDatasetError,
    InvalidRequestError,
    MarketError,
    RateLimitError,
)
from repro.platform import (
    MarketClient,
    MarketGateway,
    MarketService,
    STATUS_BY_ERROR,
    status_for,
)
from repro.relation import Column, Relation
from repro.wtp import PriceCurve, QueryCompletenessTask, WTPFunction

TOKENS = {"tok-acme": "acme", "tok-globex": "globex", "tok-b1": "b1",
          "tok-b2": "b2"}


def rel(name: str, offset: int = 0, n: int = 30) -> Relation:
    return Relation(
        name,
        [Column("entity_id", "int"), Column(f"{name}_val", "float")],
        [(k, float(k + offset)) for k in range(n)],
    )


def wtp_for(buyer: str, attrs=("entity_id", "base_val"), price=10.0):
    return WTPFunction(
        buyer=buyer,
        task=QueryCompletenessTask(
            wanted_keys=tuple(range(30)), attributes=attrs, key="entity_id"
        ),
        curve=PriceCurve.single(0.5, price),
    )


@pytest.fixture
def gateway():
    service = MarketService(DataMarket())
    gw = MarketGateway(service, tokens=dict(TOKENS)).start()
    yield gw
    gw.stop()
    service.close()


@pytest.fixture
def store_gateway(tmp_path):
    service = MarketService(DataMarket(store=str(tmp_path / "market.db")))
    gw = MarketGateway(service, tokens=dict(TOKENS)).start()
    yield gw
    gw.stop()
    service.close()


def client(gw, token=None) -> MarketClient:
    return MarketClient(gw.url, token=token)


# ---------------------------------------------------------------------------
# error taxonomy -> status mapping (property-style)
# ---------------------------------------------------------------------------

def all_market_errors() -> list[type]:
    seen, frontier = [], [MarketError]
    while frontier:
        cls = frontier.pop()
        seen.append(cls)
        frontier.extend(cls.__subclasses__())
    return seen


def test_every_market_error_maps_to_exactly_one_status():
    allowed = {401, 403, 404, 409, 422, 429, 503}
    for cls in all_market_errors():
        status = status_for(cls)
        assert status in allowed, (
            f"{cls.__name__} resolves to {status}; every MarketError "
            f"subclass must map into {sorted(allowed)} (never 500)"
        )
        # exactly one mapping governs: the most-derived mapped ancestor
        mapped = [k for k in cls.__mro__ if k in STATUS_BY_ERROR]
        assert mapped, f"{cls.__name__} has no mapped ancestor"
        assert status == STATUS_BY_ERROR[mapped[0]]


def test_key_statuses_are_semantically_right():
    from repro.errors import (
        AuditError,
        LedgerError,
        LicenseDowngradeError,
        LicensingError,
        MarketDesignError,
        UnknownParticipantError,
    )
    from repro.platform import ServiceError, StoreError

    assert status_for(AuthenticationError) == 401
    assert status_for(DatasetOwnershipError) == 403
    assert status_for(LicensingError) == 403
    assert status_for(DatasetNotFoundError) == 404
    assert status_for(UnknownParticipantError) == 404
    assert status_for(DuplicateDatasetError) == 409
    assert status_for(LedgerError) == 409
    # a downgrade is a conflict with granted rights, not a permission issue
    assert status_for(LicenseDowngradeError) == 409
    assert status_for(InvalidRequestError) == 422
    assert status_for(MarketDesignError) == 422
    assert status_for(RateLimitError) == 429
    assert status_for(ServiceError) == 503
    assert status_for(StoreError) == 503
    # the root is the safety net for future taxonomy growth
    assert status_for(MarketError) == 422


# ---------------------------------------------------------------------------
# full lifecycle over a real socket vs the in-process façade
# ---------------------------------------------------------------------------

def test_full_lifecycle_matches_in_process_facade(gateway):
    acme = client(gateway, "tok-acme")
    b1 = client(gateway, "tok-b1")
    b2 = client(gateway, "tok-b2")
    anon = client(gateway)
    facade = DataMarket()  # same ops, same order, in-process

    # register + update
    http_reg = acme.register_dataset(rel("base"), reserve_price=1.0)
    local_reg = facade.register_dataset(rel("base"), "acme",
                                        reserve_price=1.0)
    assert http_reg == local_reg
    assert acme.register_dataset(rel("dim", offset=100)) == \
        facade.register_dataset(rel("dim", offset=100), "acme")
    assert acme.update_dataset(rel("dim", offset=7), reserve_price=2.0) == \
        facade.update_dataset(rel("dim", offset=7), "acme",
                              reserve_price=2.0)

    # search: identical frozen dataclasses, as_of included
    http_search = anon.search(["base_val", "dim_val"])
    local_search = facade.search(["base_val", "dim_val"])
    assert http_search == local_search
    assert http_search.as_of == facade.graph_version

    # plan + collect: rows travel the socket bit-for-bit
    http_plan = anon.plan(["entity_id", "base_val", "dim_val"],
                          key="entity_id")
    local_plan = facade.plan(["entity_id", "base_val", "dim_val"],
                             key="entity_id")
    local_relations = local_plan.collect()
    assert http_plan.as_of == local_plan.as_of
    assert http_plan.cached == local_plan.cached
    assert len(http_plan.mashups) == len(local_plan.mashups)
    for view, mashup, relation in zip(
        http_plan.mashups, local_plan.mashups, local_relations
    ):
        assert view.datasets == tuple(mashup.plan.sources())
        assert view.matched == tuple(sorted(mashup.matched.items()))
        assert view.missing == mashup.missing
        assert view.relation.schema == relation.schema
        assert view.relation.rows == relation.rows

    # trading: competing buyers, cleared round
    b1.register_participant("b1", funding=100.0)
    b2.register_participant("b2", funding=100.0)
    facade.register_participant("b1", funding=100.0)
    facade.register_participant("b2", funding=100.0)
    assert b1.submit_wtp(wtp_for("b1", price=10.0)) == \
        facade.submit_wtp(wtp_for("b1", price=10.0))
    assert b2.submit_wtp(wtp_for("b2", price=8.0)) == \
        facade.submit_wtp(wtp_for("b2", price=8.0))

    http_round = b1.run_round()
    local_round = facade.run_round()
    assert http_round.round_index == local_round.round_index
    assert http_round.as_of == local_round.as_of
    assert http_round.transactions == len(local_round.deliveries) > 0
    assert http_round.revenue == local_round.revenue
    for view, delivery in zip(http_round.deliveries,
                              local_round.deliveries):
        assert view.buyer == delivery.buyer
        assert view.price_paid == delivery.price_paid
        assert view.satisfaction == delivery.satisfaction
        assert view.datasets == tuple(delivery.mashup.plan.sources())
        assert view.seller_shares == \
            tuple(sorted(delivery.split.dataset_shares.items()))
    assert [r for r in http_round.rejections] == \
        [(r.buyer, r.reason) for r in local_round.rejections]

    # retire
    assert acme.retire_dataset("dim") == facade.retire_dataset("dim")
    # every response observed the same version history
    assert anon.healthz()["graph_version"] == facade.graph_version


def test_every_success_response_carries_as_of(gateway):
    acme = client(gateway, "tok-acme")
    reg = acme.register_dataset(rel("base"))
    assert reg.as_of >= 1
    assert acme.search(["base_val"]).as_of >= reg.as_of
    assert acme.plan(["base_val"]).as_of >= reg.as_of
    page_as_of = acme._request("GET", "/healthz")["graph_version"]
    assert page_as_of >= reg.as_of


# ---------------------------------------------------------------------------
# auth, ownership, rate limiting
# ---------------------------------------------------------------------------

def test_mutation_without_token_is_401(gateway):
    anon = client(gateway)
    with pytest.raises(AuthenticationError):
        anon.register_dataset(rel("base"))
    with pytest.raises(AuthenticationError):
        anon.run_round()


def test_unknown_token_is_401(gateway):
    intruder = client(gateway, "tok-forged")
    with pytest.raises(AuthenticationError):
        intruder.register_dataset(rel("base"))


def test_foreign_seller_update_and_retire_are_403(gateway):
    acme = client(gateway, "tok-acme")
    globex = client(gateway, "tok-globex")
    acme.register_dataset(rel("base"))
    with pytest.raises(DatasetOwnershipError):
        globex.update_dataset(rel("base"))
    with pytest.raises(DatasetOwnershipError):
        globex.retire_dataset("base")
    # the failed attempts moved nothing
    assert acme.search(["base_val"]).datasets == ("base",)


def test_rate_limit_returns_429_with_retry_after():
    service = MarketService(DataMarket())
    gw = MarketGateway(
        service, tokens=dict(TOKENS), rate_limit=2.0, burst=2
    ).start()
    try:
        c = client(gw, "tok-acme")
        c.healthz()
        c.healthz()
        with pytest.raises(RateLimitError) as exc_info:
            c.healthz()
        assert exc_info.value.retry_after > 0
        # an unauthenticated client has its own (address-keyed) bucket
        assert client(gw).healthz()["status"] == "ok"
    finally:
        gw.stop()
        service.close()


# ---------------------------------------------------------------------------
# validation + error bodies
# ---------------------------------------------------------------------------

def test_validation_failures_are_422(gateway):
    acme = client(gateway, "tok-acme")
    with pytest.raises(InvalidRequestError):
        acme.plan([])  # empty attribute list
    with pytest.raises(InvalidRequestError):
        acme._request("POST", "/plan", {"attributes": ["a"], "oops": 1})
    with pytest.raises(InvalidRequestError):
        acme._request("POST", "/datasets", {"relation": {"name": "x"}})
    with pytest.raises(InvalidRequestError):
        # schema violation inside the relation payload: int column, str row
        acme._request("POST", "/datasets", {"relation": {
            "name": "x",
            "columns": [["k", "int", None]],
            "rows": [["not-an-int"]],
        }})


def test_unknown_routes_and_names_are_404(gateway):
    acme = client(gateway, "tok-acme")
    with pytest.raises(DatasetNotFoundError):
        acme._request("GET", "/nope")
    with pytest.raises(DatasetNotFoundError):
        acme.retire_dataset("ghost")


def test_duplicate_register_is_409(gateway):
    acme = client(gateway, "tok-acme")
    acme.register_dataset(rel("base"))
    with pytest.raises(DuplicateDatasetError):
        acme.register_dataset(rel("base"))


def test_unknown_wtp_task_kind_is_422(gateway):
    b1 = client(gateway, "tok-b1")
    b1.register_participant("b1", funding=10.0)
    with pytest.raises(InvalidRequestError, match="task kind"):
        b1._request("POST", "/wtp", {
            "task": {"kind": "python_pickle"},
            "curve": [[0.5, 1.0]],
        })


def test_wtp_books_under_authenticated_principal(gateway):
    # the gateway ignores any buyer the spec claims: the token decides
    b1 = client(gateway, "tok-b1")
    b1.register_participant("b1", funding=10.0)
    receipt = b1.submit_wtp(wtp_for("someone-else", attrs=("base_val",)))
    assert receipt.buyer == "b1"


# ---------------------------------------------------------------------------
# durable reads over HTTP (store-backed gateway)
# ---------------------------------------------------------------------------

def test_listing_and_fts_over_http(store_gateway):
    acme = client(store_gateway, "tok-acme")
    for name in ("alpha", "beta", "gamma"):
        acme.register_dataset(rel(name))
    page, cursor = acme.list_datasets(limit=2, sort="name")
    assert [r["dataset"] for r in page] == ["alpha", "beta"]
    page2, cursor2 = acme.list_datasets(limit=2, cursor=cursor, sort="name")
    assert [r["dataset"] for r in page2] == ["gamma"]
    assert cursor2 is None
    with pytest.raises(InvalidRequestError, match="unknown sort key"):
        acme.list_datasets(sort="bogus")
    with pytest.raises(InvalidRequestError, match="malformed cursor"):
        acme.list_datasets(cursor="zzz")
    hits = acme.search_text("beta")
    assert [h["dataset"] for h in hits] == ["beta"]


def test_listing_without_store_is_503(gateway):
    from repro.platform import ServiceError

    acme = client(gateway, "tok-acme")
    with pytest.raises(ServiceError):
        acme.list_datasets()


# ---------------------------------------------------------------------------
# pinned snapshot reads over HTTP
# ---------------------------------------------------------------------------

def test_pinned_search_and_plan_share_one_version_under_churn(gateway):
    acme = client(gateway, "tok-acme")
    anon = client(gateway)
    acme.register_dataset(rel("base"))
    acme.register_dataset(rel("dim", offset=50))

    stop = threading.Event()
    churn_error = []

    def churn():
        i = 0
        try:
            while not stop.is_set():
                acme.update_dataset(rel("dim", offset=i))
                i += 1
        except MarketError as exc:  # pragma: no cover - diagnostic only
            churn_error.append(exc)

    writer = threading.Thread(target=churn, daemon=True)
    writer.start()
    try:
        versions = set()
        for _ in range(10):
            pinned = anon.pinned_query(
                search={"attributes": ["base_val", "dim_val"]},
                plan={"attributes": ["entity_id", "base_val"],
                      "key": "entity_id"},
            )
            # the snapshot contract: one version for the whole block
            assert pinned.search.as_of == pinned.as_of
            assert pinned.plan.as_of == pinned.as_of
            versions.add(pinned.as_of)
    finally:
        stop.set()
        writer.join(10)
    assert not churn_error
    # the churn was visible across requests (versions actually moved)
    assert len(versions) > 1


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------

def test_healthz_and_stats_expose_service_counters(gateway):
    acme = client(gateway, "tok-acme")
    assert acme.healthz()["status"] == "ok"
    acme.register_dataset(rel("base"))
    acme.search(["base_val"])
    with pytest.raises(DuplicateDatasetError):
        acme.register_dataset(rel("base"))
    stats = acme.stats()
    service = stats["service"]
    assert service["writes_applied"] >= 1
    assert service["writes_failed"] >= 1
    assert service["reads"] >= 1
    assert service["graph_version"] >= 1
    assert isinstance(service["queue_depth"], int)
    assert isinstance(service["writer_busy"], bool)
    requests = stats["requests"]
    assert requests["total"] >= 4
    assert requests["errors"].get("409") == 1
    assert stats["latency_ms"]["p50"] is not None
    assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"]


def test_service_stats_standalone():
    service = MarketService(DataMarket())
    try:
        service.register_dataset(rel("base"), "acme").result(10)
        service.search(["base_val"])
        stats = service.stats()
        assert stats["queue_depth"] == 0
        assert stats["writer_busy"] is False
        assert stats["writes_applied"] == 1
        assert stats["writes_failed"] == 0
        assert stats["reads"] == 1
        assert stats["graph_version"] == service.market.graph_version
    finally:
        service.close()
