"""Tests for data trusts (personal-data coalitions, Section 4.5)."""

import pytest

from repro.datagen import make_classification_world
from repro.market import (
    Arbiter,
    BuyerPlatform,
    DataTrust,
    TrustError,
    exclusive_auction_market,
)
from repro.relation import Column, Relation, Schema

SCHEMA = Schema([Column("entity_id", "int", "entity"),
                 Column("steps", "int")])


def member_rows(member_idx: int, n: int) -> Relation:
    base = member_idx * 100
    return Relation(
        f"member_{member_idx}",
        SCHEMA,
        [(base + i, 1000 * member_idx + i) for i in range(n)],
    )


def test_contribute_and_pool():
    trust = DataTrust("fitness_trust", SCHEMA)
    trust.contribute("alice", member_rows(0, 5))
    trust.contribute("bob", member_rows(1, 3))
    pooled = trust.pooled_dataset()
    assert len(pooled) == 8
    assert trust.members == ["alice", "bob"]
    assert trust.member_of_row(0) == "alice"
    assert trust.member_of_row(6) == "bob"
    with pytest.raises(TrustError):
        trust.member_of_row(99)


def test_contribute_validation():
    trust = DataTrust("t", SCHEMA)
    with pytest.raises(TrustError, match="schema"):
        trust.contribute("x", Relation("r", [("a", "int")], [(1,)]))
    with pytest.raises(TrustError, match="zero rows"):
        trust.contribute(
            "x", Relation("r", SCHEMA, [])
        )
    with pytest.raises(TrustError, match="no contributions"):
        DataTrust("empty", SCHEMA).pooled_dataset()


def test_distribution_proportional_to_rows_used():
    trust = DataTrust("t", SCHEMA)
    trust.contribute("alice", member_rows(0, 6))
    trust.contribute("bob", member_rows(1, 2))
    pooled = trust.pooled_dataset()
    # the sold mashup uses only alice's first 4 rows and bob's 2 rows
    sold = pooled.select(
        lambda r: r["entity_id"] in {0, 1, 2, 3, 100, 101}
    )
    payouts = trust.distribute(sold, 60.0)
    assert payouts["alice"] == pytest.approx(40.0)
    assert payouts["bob"] == pytest.approx(20.0)
    assert trust.payout_of("alice") == pytest.approx(40.0)
    statement = trust.statement()
    by_member = {r["member"]: r for r in statement.to_dicts()}
    assert by_member["alice"]["rows_contributed"] == 6
    assert by_member["bob"]["payout"] == pytest.approx(20.0)


def test_distribution_requires_trust_rows():
    trust = DataTrust("t", SCHEMA)
    trust.contribute("alice", member_rows(0, 2))
    foreign = Relation("other", SCHEMA, [(500, 1)])
    with pytest.raises(TrustError, match="no rows of trust"):
        trust.distribute(foreign, 10.0)
    with pytest.raises(TrustError, match="non-negative"):
        trust.distribute(trust.pooled_dataset(), -1.0)


def test_trust_sells_through_the_market_end_to_end():
    """Full loop: pool -> share -> mashup sale -> member payouts."""
    world = make_classification_world(
        n_entities=120, feature_weights=(2.0, 1.5),
        dataset_features=((0,),), seed=44,
    )
    # members contribute disjoint slices of a personal-data relation that
    # joins the seller's features on entity_id
    trust = DataTrust("wearables", SCHEMA)
    trust.contribute(
        "alice",
        Relation("a", SCHEMA, [(i, i * 10) for i in range(0, 60)]),
    )
    trust.contribute(
        "bob",
        Relation("b", SCHEMA, [(i, i * 10) for i in range(60, 120)]),
    )

    arbiter = Arbiter(exclusive_auction_market(k=1, reserve=10.0))
    arbiter.accept_dataset(world.datasets[0], seller="feature_vendor")
    arbiter.accept_dataset(trust.pooled_dataset(), seller="wearables_trust")

    buyer = BuyerPlatform("b1")
    arbiter.register_participant("b1", funding=300.0)
    wtp = buyer.completeness_wtp(
        wanted_keys=list(range(120)),
        attributes=["f0", "steps"],
        price_steps=[(0.8, 50.0)],
    )
    buyer.submit(arbiter, wtp)
    result = arbiter.run_round()
    assert result.transactions == 1
    delivery = result.deliveries[0]
    assert "wearables" in delivery.mashup.plan.sources()

    trust_revenue = delivery.split.dataset_shares["wearables"]
    assert trust_revenue > 0
    payouts = trust.distribute(delivery.mashup.relation, trust_revenue)
    # both members' rows were used equally: equal payouts
    assert payouts["alice"] == pytest.approx(payouts["bob"], rel=0.05)
    assert sum(payouts.values()) == pytest.approx(trust_revenue)
