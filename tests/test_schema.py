"""Unit tests for repro.relation.schema."""

import pytest

from repro.errors import SchemaError, TypeMismatchError, UnknownColumnError
from repro.relation import Column, Schema


def test_column_requires_name():
    with pytest.raises(SchemaError):
        Column("")


def test_column_rejects_unknown_dtype():
    with pytest.raises(SchemaError):
        Column("a", "decimal")


def test_column_accepts_null_everywhere():
    for dtype in ("int", "float", "str", "bool", "any"):
        assert Column("a", dtype).accepts(None)


def test_column_int_rejects_bool():
    col = Column("a", "int")
    assert col.accepts(3)
    assert not col.accepts(True)


def test_column_float_accepts_int():
    assert Column("a", "float").accepts(3)
    assert Column("a", "float").accepts(3.5)


def test_column_any_accepts_everything():
    col = Column("a", "any")
    assert col.accepts([1, 2])
    assert col.accepts(object())


def test_schema_from_strings_and_tuples():
    s = Schema(["a", ("b", "int"), Column("c", "str", "city")])
    assert s.names == ("a", "b", "c")
    assert s["b"].dtype == "int"
    assert s["c"].semantic == "city"


def test_schema_rejects_duplicates():
    with pytest.raises(SchemaError, match="duplicate"):
        Schema(["a", "b", "a"])


def test_schema_position_and_contains():
    s = Schema(["a", "b"])
    assert s.position("b") == 1
    assert "a" in s and "z" not in s
    with pytest.raises(UnknownColumnError):
        s.position("z")


def test_schema_project_and_rename():
    s = Schema([("a", "int"), ("b", "str")])
    assert s.project(["b"]).names == ("b",)
    renamed = s.rename({"a": "x"})
    assert renamed.names == ("x", "b")
    assert renamed["x"].dtype == "int"
    with pytest.raises(UnknownColumnError):
        s.rename({"zzz": "y"})


def test_schema_concat_clash():
    a, b = Schema(["a", "b"]), Schema(["b", "c"])
    with pytest.raises(SchemaError, match="clash"):
        a.concat(b)
    assert a.concat(Schema(["c"])).names == ("a", "b", "c")


def test_validate_row_arity_and_types():
    s = Schema([("a", "int"), ("b", "str")])
    s.validate_row((1, "x"))
    s.validate_row((None, None))
    with pytest.raises(SchemaError):
        s.validate_row((1,))
    with pytest.raises(TypeMismatchError):
        s.validate_row(("oops", "x"))


def test_with_semantic():
    s = Schema(["a", "b"]).with_semantic("a", "price")
    assert s["a"].semantic == "price"
    assert s["b"].semantic is None


def test_schema_equality_and_hash():
    assert Schema([("a", "int")]) == Schema([("a", "int")])
    assert Schema([("a", "int")]) != Schema([("a", "float")])
    assert hash(Schema(["a"])) == hash(Schema(["a"]))
