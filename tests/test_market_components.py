"""Tests for ledger, audit log, lineage, licensing, negotiation, services,
insurance — the DMMS building blocks."""

import pytest

from repro.errors import (
    AuditError,
    InsufficientFundsError,
    LedgerError,
    LicensingError,
    NegotiationError,
)
from repro.integration import AffineMap, TransformHint
from repro.market import (
    AuditLog,
    ContextualIntegrityPolicy,
    InsuranceDesk,
    InsuranceError,
    Ledger,
    License,
    LicenseKind,
    LicenseRegistry,
    LineageStore,
    NegotiationManager,
    RecommendationService,
    RequestStatus,
)
from repro.relation import Relation


# -- ledger --------------------------------------------------------------------


def test_ledger_open_mint_transfer():
    ledger = Ledger()
    ledger.open_account("alice")
    ledger.open_account("bob", initial=5.0)
    ledger.mint("alice", 10.0)
    ledger.transfer("alice", "bob", 4.0, memo="test")
    assert ledger.balance("alice") == 6.0
    assert ledger.balance("bob") == 9.0
    assert len(ledger.history("bob")) == 1
    assert ledger.history()[-1].memo == "test"


def test_ledger_overdraft_refused():
    ledger = Ledger()
    ledger.open_account("a", initial=1.0)
    ledger.open_account("b")
    with pytest.raises(InsufficientFundsError):
        ledger.transfer("a", "b", 2.0)


def test_ledger_validation():
    ledger = Ledger()
    ledger.open_account("a")
    with pytest.raises(LedgerError):
        ledger.open_account("a")
    with pytest.raises(LedgerError):
        ledger.open_account("c", initial=-1.0)
    with pytest.raises(LedgerError):
        ledger.balance("ghost")
    with pytest.raises(LedgerError):
        ledger.transfer("a", "ghost", 1.0)
    with pytest.raises(LedgerError):
        ledger.mint("a", -1.0)
    with pytest.raises(LedgerError):
        ledger.transfer("a", "a", -1.0)


def test_ledger_conservation():
    ledger = Ledger()
    ledger.mint("a", 100.0)
    ledger.open_account("b")
    ledger.transfer("a", "b", 30.0)
    assert ledger.conservation_check()
    assert ledger.total_minted() == 100.0


# -- audit log --------------------------------------------------------------------


def test_audit_chain_appends_and_verifies():
    log = AuditLog()
    log.append("event_a", {"x": 1})
    log.append("event_b", {"y": [1, 2]})
    assert log.verify()
    assert len(log) == 2
    assert log.records("event_a")[0].payload == {"x": 1}


def test_audit_detects_tampering():
    log = AuditLog()
    log.append("e", {"amount": 10})
    log.append("e", {"amount": 20})
    # tamper with a payload behind the log's back
    log._records[0].payload["amount"] = 9999
    with pytest.raises(AuditError, match="tampered"):
        log.verify()


def test_audit_detects_reordering():
    log = AuditLog()
    log.append("e", {"n": 1})
    log.append("e", {"n": 2})
    log._records.reverse()
    with pytest.raises(AuditError):
        log.verify()


# -- lineage ----------------------------------------------------------------------


def test_lineage_records_and_queries():
    store = LineageStore()
    store.record_sale(1, "buyer1", 100.0, {"ds_a": 60.0, "ds_b": 40.0},
                      ["ds_a", "ds_b"])
    store.record_sale(2, "buyer2", 50.0, {"ds_a": 50.0}, ["ds_a"])
    assert store.revenue_of("ds_a") == 110.0
    assert store.revenue_of("ds_b") == 40.0
    assert store.revenue_of("ghost") == 0.0
    assert len(store.sales_of("ds_a")) == 2
    assert store.mashups_containing("ds_b") == [("ds_a", "ds_b")]
    assert store.datasets() == ["ds_a", "ds_b"]


# -- licensing ----------------------------------------------------------------------


def test_license_registry_open_license():
    reg = LicenseRegistry()
    reg.register("ds", owner="alice")
    reg.check_sale("ds", "b1")
    reg.record_sale("ds", "b1")
    reg.check_sale("ds", "b2")  # open license: unlimited buyers
    assert reg.owner_of("ds") == "alice"
    assert reg.licensees_of("ds") == ["b1"]


def test_exclusive_license_blocks_second_buyer():
    reg = LicenseRegistry()
    reg.register(
        "ds", owner="a",
        license=License(LicenseKind.EXCLUSIVE, exclusivity_tax_rate=0.5),
    )
    reg.check_sale("ds", "b1")
    reg.record_sale("ds", "b1")
    reg.check_sale("ds", "b1")  # existing holder may re-buy
    with pytest.raises(LicensingError, match="exclusively"):
        reg.check_sale("ds", "b2")
    assert reg.license_of("ds").price_with_tax(100.0) == 150.0


def test_transfer_license_moves_ownership():
    reg = LicenseRegistry()
    reg.register("ds", owner="a", license=License(LicenseKind.TRANSFER))
    reg.check_sale("ds", "b1")
    reg.record_sale("ds", "b1")
    assert reg.owner_of("ds") == "b1"
    with pytest.raises(LicensingError, match="transferred"):
        reg.check_sale("ds", "b2")


def test_non_resale_license():
    reg = LicenseRegistry()
    reg.register("ds", owner="a", license=License(LicenseKind.NON_RESALE))
    reg.record_sale("ds", "b1")
    with pytest.raises(LicensingError, match="forbids resale"):
        reg.check_resale("ds", "b1")
    with pytest.raises(LicensingError, match="no license"):
        reg.check_resale("ds", "stranger")
    open_reg = LicenseRegistry()
    open_reg.register("ds", owner="a")
    open_reg.record_sale("ds", "b1")
    open_reg.check_resale("ds", "b1")  # open license resale OK


def test_contextual_integrity_blocks_context():
    reg = LicenseRegistry()
    reg.register(
        "ds", owner="a",
        policy=ContextualIntegrityPolicy.of("research", "healthcare"),
    )
    reg.check_sale("ds", "b1", context="research")
    with pytest.raises(LicensingError, match="contextual-integrity"):
        reg.check_sale("ds", "b1", context="advertising")


def test_license_validation():
    with pytest.raises(LicensingError):
        License(exclusivity_tax_rate=-0.5)
    with pytest.raises(LicensingError):
        License(max_licensees=0)
    reg = LicenseRegistry()
    reg.register("ds", owner="a")
    with pytest.raises(LicensingError):
        reg.register("ds", owner="b")
    with pytest.raises(LicensingError):
        reg.check_sale("ghost", "b")


# -- negotiation -----------------------------------------------------------------


def test_negotiation_publish_and_respond_hint():
    manager = NegotiationManager(base_bounty=2.0)
    requests = manager.publish_gaps({"attr_e": 3, "attr_f": 1})
    assert len(requests) == 2
    by_attr = {r.attribute: r for r in requests}
    assert by_attr["attr_e"].bounty == 6.0
    hint = TransformHint("ds", "col", "attr_e", AffineMap(1.0, 0.0))
    fulfilled = manager.respond_with_hint(
        by_attr["attr_e"].request_id, "seller9", hint
    )
    assert fulfilled.status is RequestStatus.FULFILLED
    assert fulfilled.fulfilled_by == "seller9"
    assert len(manager.open_requests()) == 1


def test_negotiation_respond_with_dataset():
    manager = NegotiationManager()
    (request,) = manager.publish_gaps({"e": 1})
    good = Relation("new_ds", [("entity_id", "int"), ("e", "float")],
                    [(1, 2.0)])
    manager.respond_with_dataset(request.request_id, "s3", good)
    assert manager.request(request.request_id).status is RequestStatus.FULFILLED


def test_negotiation_validation():
    manager = NegotiationManager()
    (request,) = manager.publish_gaps({"e": 1})
    bad = Relation("bad", [("x", "int")], [(1,)])
    with pytest.raises(NegotiationError, match="does not contain"):
        manager.respond_with_dataset(request.request_id, "s", bad)
    wrong_hint = TransformHint("ds", "col", "other", AffineMap(1.0, 0.0))
    with pytest.raises(NegotiationError, match="targets"):
        manager.respond_with_hint(request.request_id, "s", wrong_hint)
    manager.withdraw(request.request_id)
    with pytest.raises(NegotiationError, match="not open"):
        manager.withdraw(request.request_id)
    with pytest.raises(NegotiationError):
        manager.request(99)
    with pytest.raises(NegotiationError):
        NegotiationManager(base_bounty=-1.0)


def test_negotiation_republish_raises_bounty():
    manager = NegotiationManager(base_bounty=1.0)
    manager.publish_gaps({"e": 1})
    (request,) = manager.publish_gaps({"e": 5})
    assert request.bounty == 5.0
    assert len(manager.open_requests()) == 1


# -- recommendations ----------------------------------------------------------------


def test_recommendations_from_co_purchases():
    svc = RecommendationService()
    svc.record_purchase("b1", ["ds_a", "ds_b"])
    svc.record_purchase("b2", ["ds_a", "ds_c"])
    recs = svc.recommend("b1")
    assert recs and recs[0].dataset == "ds_c"
    assert recs[0].leaks_information
    assert recs[0].evidence_buyers == ("b2",)
    assert svc.recommend("stranger") == []
    assert svc.purchases_of("b1") == {"ds_a", "ds_b"}


# -- insurance ------------------------------------------------------------------------


def test_insurance_underwrite_collect_claim():
    ledger = Ledger()
    ledger.mint("seller", 100.0)
    desk = InsuranceDesk(ledger)
    policy = desk.underwrite(
        "ds", "seller", liability=50.0, breach_probability=0.1, loading=0.2
    )
    assert policy.premium == pytest.approx(0.1 * 50 * 1.2)
    desk.collect_premium(policy.policy_id)
    assert desk.solvency() == pytest.approx(policy.premium)
    ledger.mint(desk.INSURER_ACCOUNT, 100.0)  # capitalize the insurer
    payout = desk.file_claim(policy.policy_id)
    assert payout == 50.0
    assert not desk.policy(policy.policy_id).active
    with pytest.raises(InsuranceError):
        desk.collect_premium(policy.policy_id)


def test_insurance_validation():
    desk = InsuranceDesk(Ledger())
    with pytest.raises(InsuranceError):
        desk.underwrite("ds", "s", liability=0.0, breach_probability=0.1)
    with pytest.raises(InsuranceError):
        desk.underwrite("ds", "s", liability=1.0, breach_probability=1.5)
    with pytest.raises(InsuranceError):
        desk.underwrite("ds", "s", liability=1.0, breach_probability=0.1,
                        loading=-0.1)
    with pytest.raises(InsuranceError):
        desk.policy(5)


def test_insurance_expected_profit_is_loading():
    desk = InsuranceDesk(Ledger())
    desk.underwrite("ds", "s", liability=100.0, breach_probability=0.1,
                    loading=0.25)
    assert desk.expected_profit_per_period() == pytest.approx(
        0.1 * 100 * 0.25
    )
