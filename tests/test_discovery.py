"""Tests for the discovery subsystem (profiler, metadata, index, search)."""

import pytest

from repro.discovery import (
    DiscoveryEngine,
    IndexBuilder,
    MetadataEngine,
    name_similarity,
    profile_column,
    profile_table,
)
from repro.errors import DiscoveryError
from repro.relation import Column, Relation


def make_orders(n=50):
    return Relation(
        "orders",
        [Column("order_id", "int"), Column("customer_id", "int", "customer"),
         Column("amount", "float")],
        [(i, i % 20, float(i) * 1.5) for i in range(n)],
    )


def make_customers():
    return Relation(
        "customers",
        [Column("customer_id", "int", "customer"), Column("city", "str")],
        [(i, "oslo" if i % 2 else "rome") for i in range(20)],
    )


def make_unrelated():
    return Relation(
        "weather",
        [Column("station", "str"), Column("temp", "float")],
        [(f"st{i}", 20.0 + i) for i in range(10)],
    )


# -- profiler ---------------------------------------------------------------


def test_profile_column_numeric_key():
    p = profile_column(make_orders(), "order_id")
    assert p.is_numeric and p.looks_like_key
    assert p.numeric is not None and p.numeric.minimum == 0
    assert p.distinct_fraction == 1.0


def test_profile_column_categorical():
    p = profile_column(make_customers(), "city")
    assert not p.is_numeric and not p.looks_like_key
    assert p.categorical.distinct == 2


def test_profile_table():
    t = profile_table(make_orders())
    assert t.dataset == "orders" and t.n_rows == 50
    assert {c.column for c in t.columns} == {"order_id", "customer_id", "amount"}
    assert t.column("amount").dtype == "float"
    with pytest.raises(KeyError):
        t.column("nope")


def test_name_similarity():
    assert name_similarity("customer_id", "customer_id") == 1.0
    assert name_similarity("Customer-ID", "customer_id") == 1.0
    assert name_similarity("customer_id", "id_customer") > 0.8
    assert name_similarity("customer_id", "temp") < 0.5


# -- metadata engine ----------------------------------------------------------


def test_register_and_versions():
    eng = MetadataEngine()
    snap1 = eng.register(make_orders(), owner="alice")
    assert snap1.version == 1 and snap1.owners == ("alice",)
    # identical content: no new snapshot
    snap_same = eng.register(make_orders())
    assert snap_same.version == 1
    # changed content: version bump
    snap2 = eng.register(make_orders(n=60))
    assert snap2.version == 2
    assert len(eng.lifecycle("orders").snapshots) == 2
    assert eng.snapshot("orders").profile.n_rows == 60


def test_unknown_dataset_raises():
    eng = MetadataEngine()
    with pytest.raises(DiscoveryError):
        eng.relation("ghost")


def test_access_quota():
    eng = MetadataEngine(access_quota=2)
    eng.register(make_orders())
    eng.register(make_customers())
    with pytest.raises(DiscoveryError):
        eng.register(make_unrelated())


def test_output_schema_relations():
    eng = MetadataEngine()
    eng.register_batch([make_orders(), make_customers()])
    out = eng.output_schema()
    assert set(out) == {"datasets", "columns", "snapshots"}
    datasets = {r["dataset"] for r in out["datasets"].to_dicts()}
    assert datasets == {"orders", "customers"}
    cols = out["columns"].where(dataset="orders")
    assert len(cols) == 3


def test_listeners_fire_on_new_snapshot():
    eng = MetadataEngine()
    events = []
    eng.subscribe(events.append)
    eng.register(make_orders())
    eng.register(make_orders())  # unchanged -> no event
    assert len(events) == 1


# -- index builder -------------------------------------------------------------


@pytest.fixture
def indexed():
    eng = MetadataEngine()
    eng.register_batch([make_orders(), make_customers(), make_unrelated()])
    return eng, IndexBuilder(eng)


def test_join_candidates_found(indexed):
    _eng, index = indexed
    cands = index.join_candidates(min_score=0.5)
    pairs = {
        frozenset([(c.left_dataset, c.left_column),
                   (c.right_dataset, c.right_column)])
        for c in cands
    }
    assert frozenset([("orders", "customer_id"),
                      ("customers", "customer_id")]) in pairs


def test_join_candidates_directional_view(indexed):
    _eng, index = indexed
    from_customers = index.join_candidates(dataset="customers")
    assert all(c.left_dataset == "customers" for c in from_customers)


def test_graph_and_path(indexed):
    _eng, index = indexed
    assert "weather" in index.graph
    path = index.join_path("orders", "customers")
    assert len(path) == 1
    step = path[0]
    assert step.left_dataset == "orders" and step.left_column == "customer_id"
    with pytest.raises(DiscoveryError):
        index.join_path("orders", "weather")
    with pytest.raises(DiscoveryError):
        index.join_path("orders", "ghost")


def test_neighbours(indexed):
    _eng, index = indexed
    assert index.neighbours("orders") == ["customers"]
    with pytest.raises(DiscoveryError):
        index.neighbours("ghost")


def test_index_refreshes_after_update(indexed):
    eng, index = indexed
    assert index.neighbours("weather") == []
    # a new dataset arrives that shares the station column
    stations = Relation(
        "stations",
        [Column("station", "str"), Column("lat", "float")],
        [(f"st{i}", 10.0 + i) for i in range(10)],
    )
    eng.register(stations)
    assert "stations" in index.neighbours("weather")


# -- discovery engine -----------------------------------------------------------


@pytest.fixture
def discovery(indexed):
    eng, index = indexed
    return DiscoveryEngine(eng, index)


def test_match_attribute_by_name(discovery):
    matches = discovery.match_attribute("amount")
    assert matches[0].dataset == "orders"
    assert matches[0].score == 1.0


def test_match_attribute_by_semantic(discovery):
    matches = discovery.match_attribute("customer")
    assert {m.dataset for m in matches} == {"orders", "customers"}
    assert all(m.score == 1.0 for m in matches)


def test_search_schema_ranks_by_coverage(discovery):
    hits = discovery.search_schema(["customer_id", "amount"])
    assert hits[0].dataset == "orders"
    assert hits[0].score > hits[-1].score or len(hits) == 1


def test_search_keyword_values(discovery):
    hits = discovery.search_keyword("oslo")
    assert hits and hits[0].dataset == "customers"


def test_cover_attributes_reports_gaps(discovery):
    cover = discovery.cover_attributes(["amount", "nonexistent_xyz"])
    assert cover["amount"] is not None
    assert cover["nonexistent_xyz"] is None
