"""Direct tests for mashup plans (construction, execution, errors)."""

import pytest

from repro.errors import (
    IntegrationError,
    ReproDeprecationWarning,
    SynthesisError,
)
from repro.integration import AffineMap, DictionaryMap
from repro.mashup import JoinStep, MashupPlan, TransformStep, qualified
from repro.relation import Column, Relation, RelationExpr


@pytest.fixture
def datasets():
    orders = Relation(
        "orders",
        [Column("cid", "int"), Column("amount", "float")],
        [(1, 10.0), (2, 20.0), (2, 25.0)],
    )
    customers = Relation(
        "customers",
        [Column("cid", "int"), Column("city", "str")],
        [(1, "oslo"), (2, "rome")],
    )
    return {"orders": orders, "customers": customers}


def resolver_of(datasets):
    return lambda name: datasets[name]


def test_qualified_naming():
    assert qualified("ds", "col") == "ds__col"


def test_plan_executes_join_and_projection(datasets):
    plan = MashupPlan(
        base="orders",
        joins=[JoinStep("customers", "orders__cid", "customers__cid", 0.9)],
        output={"cid": "orders__cid", "amount": "orders__amount",
                "city": "customers__city"},
    )
    out = plan.run(resolver_of(datasets))
    assert set(out.columns) == {"cid", "amount", "city"}
    assert len(out) == 3
    assert plan.sources() == ["orders", "customers"]
    description = plan.describe()
    assert "base: orders" in description
    assert "join customers" in description
    assert "confidence 0.90" in description


def test_plan_transform_step(datasets):
    plan = MashupPlan(
        base="orders",
        transforms=[TransformStep("orders__amount", "amount_eur",
                                  AffineMap(0.9, 0.0))],
        output={"amount_eur": "amount_eur"},
    )
    out = plan.run(resolver_of(datasets))
    assert sorted(out.column("amount_eur")) == pytest.approx(
        [9.0, 18.0, 22.5]
    )
    assert "derive amount_eur" in plan.describe()


def test_plan_transform_preserves_nulls():
    data = Relation("d", [Column("x", "float")], [(1.0,), (None,)])
    plan = MashupPlan(
        base="d",
        transforms=[TransformStep("d__x", "y", AffineMap(2.0, 0.0))],
        output={"y": "y"},
    )
    out = plan.run(lambda _n: data)
    assert sorted(out.column("y"), key=lambda v: (v is None, v)) == [2.0, None]


def test_plan_dictionary_transform_fails_on_unknown_value(datasets):
    plan = MashupPlan(
        base="customers",
        transforms=[TransformStep("customers__city", "code",
                                  DictionaryMap({"oslo": "OSL"}))],
        output={"code": "code"},
    )
    with pytest.raises(SynthesisError, match="not in mapping table"):
        plan.run(resolver_of(datasets))


def test_plan_multi_column_join_step():
    """Composite-key JoinStep: extra_on pairs all constrain the join."""
    left = Relation(
        "left",
        [Column("k1", "int"), Column("k2", "str"), Column("v", "float")],
        [(1, "a", 1.0), (1, "b", 2.0), (2, "a", 3.0)],
    )
    right = Relation(
        "right",
        [Column("k1", "int"), Column("k2", "str"), Column("w", "str")],
        [(1, "a", "x"), (1, "b", "y"), (2, "b", "z")],
    )
    data = {"left": left, "right": right}
    step = JoinStep(
        "right", "left__k1", "right__k1", 0.8,
        extra_on=(("left__k2", "right__k2"),),
    )
    assert step.pairs == (
        ("left__k1", "right__k1"), ("left__k2", "right__k2"),
    )
    plan = MashupPlan(
        base="left",
        joins=[step],
        output={"v": "left__v", "w": "right__w"},
    )
    out = plan.run(resolver_of(data))
    # only (1,a) and (1,b) match on BOTH keys; (2,a)/(2,b) do not
    assert sorted(zip(out.column("v"), out.column("w"))) == [
        (1.0, "x"), (2.0, "y"),
    ]
    assert "left__k1 = right__k1 and left__k2 = right__k2" in step.describe()
    bad = MashupPlan(
        base="left",
        joins=[JoinStep("right", "left__k1", "right__k1",
                        extra_on=(("left__ghost", "right__k2"),))],
        output={"v": "left__v"},
    )
    with pytest.raises(IntegrationError, match="ghost"):
        bad.run(resolver_of(data))


def test_plan_inconsistent_join_column(datasets):
    plan = MashupPlan(
        base="orders",
        joins=[JoinStep("customers", "orders__ghost", "customers__cid")],
        output={"cid": "orders__cid"},
    )
    with pytest.raises(IntegrationError, match="ghost"):
        plan.run(resolver_of(datasets))
    plan2 = MashupPlan(
        base="orders",
        joins=[JoinStep("customers", "orders__cid", "customers__ghost")],
        output={"cid": "orders__cid"},
    )
    with pytest.raises(IntegrationError, match="ghost"):
        plan2.run(resolver_of(datasets))


def test_plan_missing_output_column(datasets):
    plan = MashupPlan(base="orders", output={"x": "orders__nope"})
    with pytest.raises(IntegrationError, match="missing columns"):
        plan.run(resolver_of(datasets))


def test_plan_missing_transform_source(datasets):
    plan = MashupPlan(
        base="orders",
        transforms=[TransformStep("orders__nope", "y", AffineMap(1.0, 0.0))],
        output={"y": "y"},
    )
    with pytest.raises(IntegrationError, match="transform source"):
        plan.run(resolver_of(datasets))


def test_plan_provenance_flows_through_execution(datasets):
    plan = MashupPlan(
        base="orders",
        joins=[JoinStep("customers", "orders__cid", "customers__cid")],
        output={"amount": "orders__amount", "city": "customers__city"},
    )
    out = plan.run(resolver_of(datasets))
    for expr in out.provenance:
        assert expr.sources() == {"orders", "customers"}


def test_plan_build_tree_is_lazy(datasets):
    """build_tree returns an unevaluated expression; engines agree."""
    calls = []

    def resolver(name):
        calls.append(name)
        return datasets[name]

    plan = MashupPlan(
        base="orders",
        joins=[JoinStep("customers", "orders__cid", "customers__cid")],
        output={"amount": "orders__amount", "city": "customers__city"},
    )
    tree = plan.build_tree(resolver)
    assert isinstance(tree, RelationExpr)
    assert tree.name == "mashup"
    assert set(tree.columns) == {"amount", "city"}
    # resolving datasets happens at build time, but no rows moved yet
    assert calls == ["orders", "customers"]
    # compare engines directly: collect() memoizes on the tree's payload
    from repro.relation import ColumnarEngine, IterationEngine

    eager = IterationEngine().execute(tree)
    columnar = ColumnarEngine().execute(tree)
    assert eager.rows == columnar.rows
    assert eager.provenance == columnar.provenance
    assert eager.schema == columnar.schema


def test_plan_execute_shim_warns_and_matches_run(datasets):
    plan = MashupPlan(
        base="orders",
        joins=[JoinStep("customers", "orders__cid", "customers__cid")],
        output={"cid": "orders__cid", "city": "customers__city"},
    )
    expected = plan.run(resolver_of(datasets))
    with pytest.warns(ReproDeprecationWarning, match="build_tree"):
        out = plan.execute(resolver_of(datasets))
    assert out.rows == expected.rows
    assert out.schema == expected.schema
