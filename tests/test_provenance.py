"""Unit tests for semiring provenance."""

import pytest

from repro.errors import ProvenanceError
from repro.relation import (
    ProvOne,
    ProvToken,
    derivation_count,
    evaluate,
    plus,
    source_shares,
    times,
    token_shares,
)


def tok(s, i):
    return ProvToken(s, i)


def test_times_drops_identity_and_flattens():
    t = times(ProvOne(), tok("a", 0), times(tok("b", 1), tok("c", 2)))
    assert {x.source for x in t.tokens()} == {"a", "b", "c"}
    assert isinstance(times(), ProvOne)
    assert times(tok("a", 0)) == tok("a", 0)


def test_plus_flattens_and_rejects_empty():
    p = plus(tok("a", 0), plus(tok("b", 1), tok("c", 2)))
    assert len(p.children) == 3
    with pytest.raises(ProvenanceError):
        plus()
    assert plus(tok("a", 0)) == tok("a", 0)


def test_evaluate_counting_semiring():
    # (a0 * b0) + (a1 * b1): two derivations
    expr = plus(times(tok("a", 0), tok("b", 0)), times(tok("a", 1), tok("b", 1)))
    assert derivation_count(expr) == 2


def test_evaluate_custom_semiring_boolean():
    expr = plus(times(tok("a", 0), tok("b", 0)), tok("c", 1))
    # boolean semiring: is the tuple derivable if dataset a is removed?
    present = lambda t: 0.0 if t.source == "a" else 1.0
    val = evaluate(expr, present, add=max, mul=min, one=1.0, zero=0.0)
    assert val == 1.0  # still derivable through c
    only_ab = lambda t: 0.0 if t.source == "c" else 1.0
    assert evaluate(expr, only_ab, add=max, mul=min) == 1.0
    nothing = lambda t: 0.0
    assert evaluate(expr, nothing, add=max, mul=min) == 0.0


def test_token_shares_product_splits_equally():
    shares = token_shares(times(tok("a", 0), tok("b", 0)))
    assert shares[tok("a", 0)] == pytest.approx(0.5)
    assert shares[tok("b", 0)] == pytest.approx(0.5)


def test_token_shares_sum_splits_over_alternatives():
    expr = plus(tok("a", 0), times(tok("b", 0), tok("c", 0)))
    shares = token_shares(expr)
    assert shares[tok("a", 0)] == pytest.approx(0.5)
    assert shares[tok("b", 0)] == pytest.approx(0.25)
    assert shares[tok("c", 0)] == pytest.approx(0.25)
    assert sum(shares.values()) == pytest.approx(1.0)


def test_token_shares_one_is_empty():
    assert token_shares(ProvOne()) == {}


def test_token_shares_always_sum_to_one():
    expr = plus(
        times(tok("a", 0), tok("a", 1), tok("b", 0)),
        plus(tok("c", 0), tok("c", 1)),
    )
    assert sum(token_shares(expr).values()) == pytest.approx(1.0)


def test_source_shares_groups_by_dataset():
    rows = [times(tok("a", 0), tok("b", 0)), tok("a", 1)]
    shares = source_shares(rows)
    assert shares["a"] == pytest.approx(1.5)
    assert shares["b"] == pytest.approx(0.5)
    assert sum(shares.values()) == pytest.approx(2.0)


def test_sources_and_repr():
    expr = times(tok("x", 0), tok("y", 3))
    assert expr.sources() == {"x", "y"}
    assert "x#0" in repr(expr)
