"""One-permutation hashing scheme: accuracy, canonicalization, safety.

Four property families around the ``"oph"`` sketch scheme:

* **Estimator accuracy** — OPH-with-densification and the classic
  k-permutation fold both estimate exact Jaccard within concentration
  bounds, including tiny universes where most bins are empty and
  densification supplies nearly the whole signature.
* **Packed canonicalization bit-stability** — the repr-free numeric
  encoding collapses ``-0.0``/``0.0``, every NaN payload, and int-valued
  floats onto single tokens, keeps bools distinct from ints, and the
  vectorized matrix builder matches the scalar reference byte for byte.
* **Typed mismatch errors** — comparing/merging signatures across seeds
  or schemes, or mixing sketch families inside one LSH index, raises
  :class:`~repro.errors.InvalidRequestError` (width mismatches stay
  ``ValueError``) instead of returning garbage estimates.
* **Persistence** — OPH serialization round-trips bit-identically
  through the raw-bin payload, legacy tag-less payloads still load as
  classic, and a durable store written under one scheme replays only
  into a market of that scheme.
"""

from __future__ import annotations

import sqlite3
import struct

import numpy as np
import pytest

from repro import DataMarket
from repro.discovery.profiler import profile_table
from repro.errors import InvalidRequestError
from repro.platform import MarketStore, StoreError
from repro.relation import Column, Relation
from repro.relation.columnar import PACK_WIDTH, pack_value, unpack_value
from repro.sketches import MinHash
from repro.sketches.histograms import NumericSummary
from repro.sketches.lsh import LSHIndex
from repro.sketches.minhash import jaccard_exact

from test_columnar_profiling import assert_profiles_identical, random_relation


# ---------------------------------------------------------------------------
# estimator accuracy: oph vs classic vs exact
# ---------------------------------------------------------------------------

def _token_pair(rng, universe: int, overlap: float) -> tuple[set, set]:
    pool = [f"tok{seed}_{i}" for seed, i in
            zip(rng.integers(1 << 20, size=universe), range(universe))]
    shared = set(pool[: int(universe * overlap)])
    rest = pool[len(shared):]
    half = len(rest) // 2
    return shared | set(rest[:half]), shared | set(rest[half:])


@pytest.mark.parametrize("overlap", [0.0, 0.2, 0.5, 0.8, 1.0])
@pytest.mark.parametrize("seed", range(4))
def test_oph_and_classic_track_exact_jaccard(overlap, seed):
    rng = np.random.default_rng(seed)
    a, b = _token_pair(rng, universe=600, overlap=overlap)
    exact = jaccard_exact(a, b)
    for scheme in ("classic", "oph"):
        sa = MinHash.of_tokens(a, num_perm=128, scheme=scheme)
        sb = MinHash.of_tokens(b, num_perm=128, scheme=scheme)
        est = sa.jaccard(sb)
        # num_perm=128 → std ≤ 0.045; 0.15 is > 3σ on a fixed seed grid
        assert abs(est - exact) < 0.15, (scheme, overlap, est, exact)


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
def test_tiny_universe_densification_dominates(size):
    """Sets far smaller than num_perm leave most bins empty: identical
    sets must still estimate 1.0 (densified slots agree because donor and
    distance agree) and disjoint sets must estimate near 0."""
    tokens = {f"t{i}" for i in range(size)}
    others = {f"u{i}" for i in range(size)}
    a = MinHash.of_tokens(tokens, num_perm=64, scheme="oph")
    b = MinHash.of_tokens(set(tokens), num_perm=64, scheme="oph")
    assert a.jaccard(b) == 1.0
    assert a.digest() == b.digest()
    c = MinHash.of_tokens(others, num_perm=64, scheme="oph")
    assert a.jaccard(c) < 0.3


def test_oph_empty_signature_semantics():
    a = MinHash(num_perm=32, scheme="oph")
    b = MinHash(num_perm=32, scheme="oph")
    assert a.jaccard(b) == 1.0  # both empty
    b.update_tokens({"x"})
    assert a.jaccard(b) == 0.0  # one empty


@pytest.mark.parametrize("scheme", ["classic", "oph"])
def test_merge_equals_union_signature(scheme):
    a_tokens = {f"a{i}" for i in range(40)} | {f"s{i}" for i in range(10)}
    b_tokens = {f"b{i}" for i in range(25)} | {f"s{i}" for i in range(10)}
    a = MinHash.of_tokens(a_tokens, num_perm=64, scheme=scheme)
    b = MinHash.of_tokens(b_tokens, num_perm=64, scheme=scheme)
    union = MinHash.of_tokens(a_tokens | b_tokens, num_perm=64,
                              scheme=scheme)
    merged = a.merge(b)
    assert merged.scheme == scheme
    assert merged.digest() == union.digest()


def test_oph_fold_order_independent():
    tokens = [f"v{i}" for i in range(100)]
    one_shot = MinHash.of_tokens(tokens, num_perm=64, scheme="oph")
    incremental = MinHash(num_perm=64, scheme="oph")
    for lo in range(0, 100, 7):
        incremental.update_tokens(tokens[lo:lo + 7])
    assert incremental.digest() == one_shot.digest()


def test_oph_seeds_decorrelate_signatures():
    tokens = {f"t{i}" for i in range(200)}
    s7 = MinHash.of_tokens(tokens, num_perm=64, seed=7, scheme="oph")
    s8 = MinHash.of_tokens(tokens, num_perm=64, seed=8, scheme="oph")
    assert s7.digest() != s8.digest()


# ---------------------------------------------------------------------------
# packed canonicalization bit-stability
# ---------------------------------------------------------------------------

def test_pack_collapses_zero_signs_and_int_valued_floats():
    assert pack_value(-0.0) == pack_value(0.0) == pack_value(0)
    assert pack_value(1.0) == pack_value(1)
    assert pack_value(-3.0) == pack_value(-3)
    assert pack_value(2.5) != pack_value(2)


def test_pack_collapses_nan_payloads():
    quiet = float("nan")
    odd_payload = struct.unpack(
        "<d", struct.pack("<Q", 0x7FF8000000000123)
    )[0]
    negative_nan = struct.unpack(
        "<d", struct.pack("<Q", 0xFFF8000000000001)
    )[0]
    assert odd_payload != odd_payload  # genuinely NaN
    assert pack_value(quiet) == pack_value(odd_payload)
    assert pack_value(quiet) == pack_value(negative_nan)


def test_pack_keeps_bools_apart_from_ints():
    assert pack_value(True) != pack_value(1)
    assert pack_value(False) != pack_value(0)
    assert pack_value(True) != pack_value(False)


def test_pack_handles_int64_boundaries_and_huge_ints():
    lo, hi = -(2 ** 63), 2 ** 63 - 1
    assert unpack_value(pack_value(lo)) == lo
    assert unpack_value(pack_value(hi)) == hi
    huge = pack_value(10 ** 40)
    assert huge[0:1] == b"r" and len(huge) == PACK_WIDTH
    assert huge == pack_value(10 ** 40)  # deterministic
    assert huge != pack_value(-(10 ** 40))
    # 2^63 exactly overflows int64 as an int but packs as a float
    assert pack_value(2 ** 63)[0:1] == b"r"
    assert pack_value(2.0 ** 63)[0:1] == b"f"


def test_pack_round_trips_reversible_tags():
    for v in (None, True, False, 0, -17, 2 ** 62, 0.5, -1e300):
        assert unpack_value(pack_value(v)) == v
    with pytest.raises(ValueError):
        unpack_value(pack_value(10 ** 40))


@pytest.mark.parametrize("values", [
    [2.0, 1.5, -0.0, 0.0, float("nan"), None, float("inf"), -float("inf")],
    [1, -1, 0, 2 ** 62, None],
    [2.5e300, 1.7e18, -0.125, None],
])
def test_packed_matrix_matches_scalar_reference(values):
    dtype = "float" if any(isinstance(v, float) for v in values) else "int"
    relation = Relation("t", [Column("c", dtype)], [(v,) for v in values])
    matrix = relation.columnar.packed_matrix("c")
    assert matrix.shape == (len(values), PACK_WIDTH)
    for row, value in zip(matrix, values):
        assert row.tobytes() == pack_value(value), value


# ---------------------------------------------------------------------------
# typed mismatch errors
# ---------------------------------------------------------------------------

def test_unknown_scheme_rejected():
    with pytest.raises(ValueError, match="unknown MinHash scheme"):
        MinHash(scheme="simhash")


@pytest.mark.parametrize("op", ["jaccard", "merge"])
def test_scheme_mismatch_raises_typed_error(op):
    classic = MinHash.of_tokens({"a"}, num_perm=64, scheme="classic")
    oph = MinHash.of_tokens({"a"}, num_perm=64, scheme="oph")
    with pytest.raises(InvalidRequestError, match="different schemes"):
        getattr(classic, op)(oph)


@pytest.mark.parametrize("op", ["jaccard", "merge"])
@pytest.mark.parametrize("scheme", ["classic", "oph"])
def test_seed_mismatch_raises_typed_error(op, scheme):
    a = MinHash.of_tokens({"a"}, num_perm=64, seed=1, scheme=scheme)
    b = MinHash.of_tokens({"a"}, num_perm=64, seed=2, scheme=scheme)
    with pytest.raises(InvalidRequestError, match="different seeds"):
        getattr(a, op)(b)


@pytest.mark.parametrize("op", ["jaccard", "merge"])
def test_width_mismatch_stays_value_error(op):
    a = MinHash.of_tokens({"a"}, num_perm=32, scheme="oph")
    b = MinHash.of_tokens({"a"}, num_perm=64, scheme="oph")
    with pytest.raises(ValueError, match="different widths"):
        getattr(a, op)(b)


def test_lsh_index_pins_sketch_family():
    index = LSHIndex(num_perm=64, bands=16)
    classic = MinHash.of_tokens({"a", "b"}, num_perm=64, scheme="classic")
    oph = MinHash.of_tokens({"a", "b"}, num_perm=64, scheme="oph")
    index.add("first", classic)
    with pytest.raises(InvalidRequestError, match="mixed sketch families"):
        index.add("second", oph)
    with pytest.raises(InvalidRequestError, match="mixed sketch families"):
        index.candidates(oph)
    reseeded = MinHash.of_tokens({"a"}, num_perm=64, seed=99,
                                 scheme="classic")
    with pytest.raises(InvalidRequestError, match="mixed sketch families"):
        index.add("third", reseeded)
    # same family still works
    index.add("fourth", MinHash.of_tokens({"a"}, num_perm=64,
                                          scheme="classic"))
    assert "first" in index.candidates(classic)


def test_lsh_index_accepts_oph_when_pinned_oph():
    index = LSHIndex(num_perm=64, bands=16)
    a = MinHash.of_tokens({f"t{i}" for i in range(50)}, num_perm=64,
                          scheme="oph")
    b = MinHash.of_tokens({f"t{i}" for i in range(50)}, num_perm=64,
                          scheme="oph")
    index.add("a", a)
    assert index.query(b)[0] == ("a", 1.0)


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n_tokens", [0, 3, 200])
def test_oph_round_trip_is_bit_identical(n_tokens):
    mh = MinHash.of_tokens({f"t{i}" for i in range(n_tokens)},
                           num_perm=64, scheme="oph")
    back = MinHash.from_bytes(mh.to_bytes())
    assert back.scheme == "oph"
    assert back.count == mh.count
    assert back.digest() == mh.digest()
    assert np.array_equal(back._bins, mh._bins)
    # raw bins survived, so post-load updates keep agreeing with a
    # signature that never went through bytes
    more = {f"extra{i}" for i in range(20)}
    back.update_tokens(more)
    mh.update_tokens(more)
    assert back.digest() == mh.digest()


def test_classic_round_trip_carries_scheme_tag():
    mh = MinHash.of_tokens({"a", "b"}, num_perm=32, scheme="classic")
    back = MinHash.from_bytes(mh.to_bytes())
    assert back.scheme == "classic"
    assert back.digest() == mh.digest()


def test_legacy_tagless_payload_loads_as_classic():
    mh = MinHash.of_tokens({"a", "b", "c"}, num_perm=32, scheme="classic")
    header = MinHash._HEADER.pack(mh.num_perm, mh.seed, mh.count)
    legacy = header + mh.signature.astype("<i8").tobytes()
    back = MinHash.from_bytes(legacy)
    assert back.scheme == "classic"
    assert back.digest() == mh.digest()
    assert back.count == mh.count


def test_corrupt_payloads_rejected():
    mh = MinHash.of_tokens({"a"}, num_perm=32, scheme="oph")
    data = mh.to_bytes()
    with pytest.raises(ValueError, match="corrupt MinHash payload"):
        MinHash.from_bytes(data + b"\x00\x00")
    bad_tag = data[: MinHash._HEADER.size] + b"\x07" + data[
        MinHash._HEADER.size + 1:
    ]
    with pytest.raises(ValueError, match="unknown MinHash scheme tag"):
        MinHash.from_bytes(bad_tag)


# ---------------------------------------------------------------------------
# oph profiling: columnar == scalar oracle, edge relations included
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(15))
def test_oph_profile_bit_identical_to_scalar_oracle(seed):
    relation = random_relation(seed)
    columnar = profile_table(relation, columnar=True, scheme="oph")
    scalar = profile_table(relation, columnar=False, scheme="oph")
    assert_profiles_identical(columnar, scalar)
    assert all(c.signature.scheme == "oph" for c in columnar.columns)


class _StrSub(str):
    pass


EDGE_RELATIONS = [
    Relation(
        "float_edges",
        [Column("f", "float")],
        [(v,) for v in (2.0, 1.5, -0.0, 0.0, float("nan"), None,
                        float("inf"), -float("inf"), 2.5e300, 1.7e18)],
    ),
    Relation(
        "huge_ints",
        [Column("i", "int")],
        [(v,) for v in (10 ** 40, -(2 ** 70), 2 ** 62, -1, None, 0)],
    ),
    Relation(
        "int_in_float_col",
        [Column("f", "float")],
        [(2 ** 60 + 1,), (0.5,), (None,), (3,)],
    ),
    Relation(
        "str_subclass",
        [Column("s", "str")],
        [(_StrSub("alpha"),), ("alpha",), ("β\x1f",), ("",), (None,)],
    ),
    Relation(
        "any_mixture",
        [Column("a", "any")],
        [((1, 2),), ({"k": 1},), (True,), (1.0,), (1,), (None,),
         ("text",)],
    ),
    Relation("no_rows", [Column("x", "int"), Column("y", "str")], []),
    Relation("all_null", [Column("x", "float")], [(None,), (None,)]),
]


@pytest.mark.parametrize(
    "relation", EDGE_RELATIONS, ids=lambda r: r.name
)
def test_oph_profile_identical_on_edge_relations(relation):
    columnar = profile_table(relation, columnar=True, scheme="oph")
    scalar = profile_table(relation, columnar=False, scheme="oph")
    assert_profiles_identical(columnar, scalar)


def test_numeric_summary_survives_nan_and_inf():
    data = np.array([1.0, float("nan"), float("inf"), -2.0])
    summary = NumericSummary.of_array(data, nulls=1)
    assert summary.count == 4 and summary.nulls == 1
    assert summary.minimum == -2.0
    assert summary.maximum == float("inf")
    assert sum(summary.bin_counts) == 2  # histogram over finite values only
    all_nan = NumericSummary.of_array(np.array([float("nan")] * 3), nulls=0)
    assert all_nan.minimum != all_nan.minimum  # NaN stats, no crash
    # the finite fast path is bit-identical to the pre-robustness output
    finite = NumericSummary.of_array(np.array([1.0, 2.0, 3.0]), nulls=0)
    assert finite.minimum == 1.0 and finite.maximum == 3.0
    assert sum(finite.bin_counts) == 3


# ---------------------------------------------------------------------------
# durable store: scheme column, bit-identical replay, typed refusals
# ---------------------------------------------------------------------------

def _store_corpus():
    return [
        Relation(
            "orders",
            [Column("order_id", "int"), Column("cust_id", "int"),
             Column("total", "float")],
            [(i, i % 5, float(i) * 1.5) for i in range(30)],
        ),
        Relation(
            "customers",
            [Column("cust_id", "int"), Column("name", "str")],
            [(i, f"name{i}") for i in range(5)],
        ),
    ]


def _seed_oph_store(tmp_path):
    path = tmp_path / "market.db"
    market = DataMarket(scheme="oph", store=str(path))
    for rel in _store_corpus():
        market.register_dataset(rel, seller="acme")
    return path, market


def test_oph_store_replays_bit_identically(tmp_path):
    path, warm = _seed_oph_store(tmp_path)
    cold = DataMarket(scheme="oph", store=str(path))
    for rel in _store_corpus():
        warm_profile = warm.metadata.snapshot(rel.name).profile
        cold_profile = cold.metadata.snapshot(rel.name).profile
        assert warm_profile.content_hash == cold_profile.content_hash
        for cw, cc in zip(warm_profile.columns, cold_profile.columns):
            assert cw.signature.scheme == cc.signature.scheme == "oph"
            assert cw.signature.to_bytes() == cc.signature.to_bytes()
            assert warm.index.lsh_band_keys(cw.signature) == (
                cold.index.lsh_band_keys(cc.signature)
            )


def test_store_refuses_cross_scheme_cold_start(tmp_path):
    path, _warm = _seed_oph_store(tmp_path)
    with pytest.raises(StoreError, match="scheme"):
        DataMarket(scheme="classic", store=str(path))
    # classic-written stores symmetrically refuse oph markets
    classic_path = tmp_path / "classic.db"
    classic = DataMarket(scheme="classic", store=str(classic_path))
    classic.register_dataset(_store_corpus()[0], seller="acme")
    with pytest.raises(StoreError, match="re-register the corpus"):
        DataMarket(scheme="oph", store=str(classic_path))


def test_store_refuses_mixed_scheme_rows(tmp_path):
    path, _warm = _seed_oph_store(tmp_path)
    conn = sqlite3.connect(path)
    try:
        conn.execute(
            "UPDATE column_profiles SET scheme = 'classic' "
            "WHERE rowid IN (SELECT rowid FROM column_profiles LIMIT 1)"
        )
        conn.commit()
    finally:
        conn.close()
    with pytest.raises(StoreError, match="mixed sketch schemes"):
        DataMarket(scheme="oph", store=str(path))


def test_store_scheme_column_round_trips(tmp_path):
    path, _warm = _seed_oph_store(tmp_path)
    conn = sqlite3.connect(path)
    try:
        schemes = {
            row[0]
            for row in conn.execute(
                "SELECT DISTINCT scheme FROM column_profiles"
            )
        }
    finally:
        conn.close()
    assert schemes == {"oph"}
